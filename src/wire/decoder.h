/**
 * @file
 * Incremental, allocation-bounded decoder for EDDIEWIRE frames
 * (frame.h). The contract the fuzz suite enforces:
 *
 *  - *Total.* next() over arbitrary fed bytes returns NeedMore, a
 *    verified Frame, or a typed WireError — never throws, never
 *    invokes UB, never reads outside the internal buffer.
 *  - *Bounded.* The decoder buffers at most capacity() ==
 *    kHeaderSize + max_payload bytes, ever. feed() returns how many
 *    bytes it accepted; a full buffer always holds a complete frame
 *    (or a malformed prefix), so draining via next() always restores
 *    feed() progress. A hostile length field can therefore waste at
 *    most one frame's worth of memory, not the heap.
 *  - *Latching.* The first malformed input poisons the stream: the
 *    error is counted once, next() keeps returning it, feed()
 *    accepts nothing more. There is no resynchronization heuristic —
 *    on a stream transport a framing error means the connection is
 *    lost as a unit, and the peer reconnects (DESIGN.md §11 threat
 *    model). reset() rearms the decoder for a new connection,
 *    keeping cumulative stats.
 */

#ifndef EDDIE_WIRE_DECODER_H
#define EDDIE_WIRE_DECODER_H

#include <cstddef>
#include <vector>

#include "frame.h"

namespace eddie::wire
{

struct FrameDecoderConfig
{
    /** Frames with payload_len above this are WireError::Oversized;
     *  also the decoder's buffering bound. */
    std::size_t max_payload = kDefaultMaxPayload;
};

/** One decode step's outcome. */
enum class DecodeStatus
{
    /** No complete frame buffered; feed more bytes (or, after
     *  endOfInput() with an empty buffer, the stream is done). */
    NeedMore,
    /** A frame with verified header and payload CRCs. */
    Frame,
    /** Malformed input; the stream is poisoned (see file comment). */
    Error,
};

struct Decoded
{
    DecodeStatus status = DecodeStatus::NeedMore;
    /** Valid when status == Frame. */
    FrameHeader header;
    /** Payload bytes (header.payload_len of them), pointing into the
     *  decoder's buffer: valid until the next feed()/reset(). */
    const char *payload = nullptr;
    /** Valid when status == Error. */
    WireError error = WireError::Truncated;
};

class FrameDecoder
{
  public:
    explicit FrameDecoder(FrameDecoderConfig cfg = {});

    /** Appends up to (capacity() - buffered()) bytes; returns how
     *  many were accepted (0 once poisoned). Invalidates the last
     *  Frame's payload pointer. */
    std::size_t feed(const void *data, std::size_t size);

    /** Decodes the next frame out of the buffer (see DecodeStatus). */
    Decoded next();

    /** Declares the byte stream finished (peer closed): a partial
     *  buffered frame becomes WireError::Truncated on the next
     *  next(). */
    void endOfInput();

    /** Rearms for a new byte stream: clears the buffer, the poison
     *  latch, and the end-of-input flag. Stats are cumulative across
     *  resets (per-connection totals live in the listener). */
    void reset();

    /** Decode counters, including one bucket per WireError. */
    const WireStats &stats() const { return stats_; }

    std::size_t buffered() const { return buf_.size() - head_; }
    /** Hard buffering bound: kHeaderSize + max_payload. */
    std::size_t capacity() const
    {
        return kHeaderSize + cfg_.max_payload;
    }
    bool poisoned() const { return poisoned_; }

  private:
    Decoded poison(WireError err);

    FrameDecoderConfig cfg_;
    std::vector<char> buf_;
    /** Consumed prefix, compacted lazily by feed() so a returned
     *  payload pointer survives until then. */
    std::size_t head_ = 0;
    WireStats stats_;
    bool poisoned_ = false;
    WireError error_ = WireError::Truncated;
    bool end_of_input_ = false;
};

} // namespace eddie::wire

#endif // EDDIE_WIRE_DECODER_H
