#include "decoder.h"

#include "common/crc32.h"

namespace eddie::wire
{

namespace
{

std::uint16_t getU16(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return std::uint16_t(u[0] | (u[1] << 8));
}

std::uint32_t getU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return std::uint32_t(u[0]) | (std::uint32_t(u[1]) << 8) |
           (std::uint32_t(u[2]) << 16) | (std::uint32_t(u[3]) << 24);
}

std::uint64_t getU64(const char *p)
{
    return std::uint64_t(getU32(p)) |
           (std::uint64_t(getU32(p + 4)) << 32);
}

} // namespace

FrameDecoder::FrameDecoder(FrameDecoderConfig cfg) : cfg_(cfg)
{
}

std::size_t
FrameDecoder::feed(const void *data, std::size_t size)
{
    if (poisoned_ || end_of_input_)
        return 0;
    // Consumed frames are compacted here, not in next(): the payload
    // pointer next() returned stays valid until this call.
    if (head_ > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(head_));
        head_ = 0;
    }
    const std::size_t room = capacity() - buf_.size();
    const std::size_t take = size < room ? size : room;
    if (take == 0)
        return 0;
    const char *p = static_cast<const char *>(data);
    buf_.insert(buf_.end(), p, p + take);
    return take;
}

Decoded
FrameDecoder::poison(WireError err)
{
    if (!poisoned_) {
        poisoned_ = true;
        error_ = err;
        stats_.count(err);
    }
    Decoded out;
    out.status = DecodeStatus::Error;
    out.error = error_;
    return out;
}

Decoded
FrameDecoder::next()
{
    Decoded out;
    if (poisoned_)
        return poison(error_);
    const std::size_t avail = buf_.size() - head_;
    if (avail < kHeaderSize) {
        if (end_of_input_ && avail > 0)
            return poison(WireError::Truncated);
        return out; // NeedMore
    }
    const char *p = buf_.data() + head_;
    if (getU32(p) != kMagic)
        return poison(WireError::BadMagic);
    // Version precedes the CRC check on purpose: a future version may
    // move the header CRC, so its location can only be trusted for
    // versions this decoder knows.
    if (getU16(p + 4) != kWireVersion)
        return poison(WireError::BadVersion);
    if (common::crc32(p, 40) != getU32(p + 40))
        return poison(WireError::HeaderCrc);
    // Past here the header fields are CRC-verified.
    const std::uint8_t type = std::uint8_t(p[6]);
    const std::uint8_t reserved = std::uint8_t(p[7]);
    if (reserved != 0 ||
        type < static_cast<std::uint8_t>(FrameType::Hello) ||
        type > static_cast<std::uint8_t>(FrameType::Nack))
        return poison(WireError::BadType);
    const std::uint32_t payload_len = getU32(p + 32);
    if (std::size_t(payload_len) > cfg_.max_payload)
        return poison(WireError::Oversized);
    const std::size_t total = kHeaderSize + payload_len;
    if (avail < total) {
        if (end_of_input_)
            return poison(WireError::Truncated);
        return out; // NeedMore
    }
    if (common::crc32(p + kHeaderSize, std::size_t(payload_len)) !=
        getU32(p + 36))
        return poison(WireError::PayloadCrc);

    out.status = DecodeStatus::Frame;
    out.header.type = static_cast<FrameType>(type);
    out.header.tenant = getU64(p + 8);
    out.header.session = getU64(p + 16);
    out.header.sequence = getU64(p + 24);
    out.header.payload_len = payload_len;
    out.payload = p + kHeaderSize;
    ++stats_.frames_decoded;
    stats_.bytes_decoded += total;
    head_ += total;
    return out;
}

void
FrameDecoder::endOfInput()
{
    end_of_input_ = true;
}

void
FrameDecoder::reset()
{
    buf_.clear();
    head_ = 0;
    poisoned_ = false;
    end_of_input_ = false;
    error_ = WireError::Truncated;
}

} // namespace eddie::wire
