#include "frame.h"

#include "common/crc32.h"

namespace eddie::wire
{

namespace
{

void putU16(std::string &out, std::uint16_t v)
{
    out.push_back(char(v & 0xFF));
    out.push_back(char((v >> 8) & 0xFF));
}

void putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

std::uint32_t getU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return std::uint32_t(u[0]) | (std::uint32_t(u[1]) << 8) |
           (std::uint32_t(u[2]) << 16) | (std::uint32_t(u[3]) << 24);
}

} // namespace

const char *
name(WireError err)
{
    switch (err) {
    case WireError::BadMagic:
        return "bad_magic";
    case WireError::BadVersion:
        return "bad_version";
    case WireError::BadType:
        return "bad_type";
    case WireError::Oversized:
        return "oversized";
    case WireError::HeaderCrc:
        return "header_crc";
    case WireError::PayloadCrc:
        return "payload_crc";
    case WireError::Truncated:
        return "truncated";
    case WireError::SequenceGap:
        return "sequence_gap";
    case WireError::BadPayload:
        return "bad_payload";
    case WireError::Protocol:
        return "protocol";
    }
    return "unknown";
}

const char *
name(FrameType type)
{
    switch (type) {
    case FrameType::Hello:
        return "hello";
    case FrameType::Ack:
        return "ack";
    case FrameType::StsBatch:
        return "sts_batch";
    case FrameType::Heartbeat:
        return "heartbeat";
    case FrameType::Eof:
        return "eof";
    case FrameType::Nack:
        return "nack";
    }
    return "unknown";
}

const char *
name(NackCode code)
{
    switch (code) {
    case NackCode::None:
        return "none";
    case NackCode::MalformedFrame:
        return "malformed_frame";
    case NackCode::SequenceGap:
        return "sequence_gap";
    case NackCode::UnknownTenant:
        return "unknown_tenant";
    case NackCode::TenantSessionLimit:
        return "tenant_session_limit";
    case NackCode::FleetSessionLimit:
        return "fleet_session_limit";
    case NackCode::BreakerOpen:
        return "breaker_open";
    case NackCode::AdmissionClosed:
        return "admission_closed";
    case NackCode::ProtocolError:
        return "protocol_error";
    }
    return "unknown";
}

std::uint64_t
WireStats::totalErrors() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kWireErrorCount; ++i)
        total += errors[i];
    return total;
}

void
WireStats::merge(const WireStats &other)
{
    frames_decoded += other.frames_decoded;
    bytes_decoded += other.bytes_decoded;
    for (std::size_t i = 0; i < kWireErrorCount; ++i)
        errors[i] += other.errors[i];
}

std::uint64_t
tenantHash(const std::string &tenant_id)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : tenant_id) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
encodeHeaderRaw(const FrameHeader &header, std::uint32_t payload_crc)
{
    std::string out;
    out.reserve(kHeaderSize);
    putU32(out, kMagic);
    putU16(out, kWireVersion);
    out.push_back(char(static_cast<std::uint8_t>(header.type)));
    out.push_back(char(0)); // reserved
    putU64(out, header.tenant);
    putU64(out, header.session);
    putU64(out, header.sequence);
    putU32(out, header.payload_len);
    putU32(out, payload_crc);
    putU32(out, common::crc32(out.data(), out.size()));
    return out;
}

std::string
encodeFrame(const FrameHeader &header, const std::string &payload)
{
    FrameHeader h = header;
    h.payload_len = std::uint32_t(payload.size());
    std::string out = encodeHeaderRaw(
        h, common::crc32(payload.data(), payload.size()));
    out.reserve(kHeaderSize + payload.size());
    out.append(payload);
    return out;
}

std::string
encodeHelloPayload(const std::string &tenant_id)
{
    std::string out;
    putU32(out, std::uint32_t(tenant_id.size()));
    out.append(tenant_id);
    return out;
}

bool
decodeHelloPayload(const char *payload, std::size_t size,
                   std::string &tenant_id)
{
    if (size < 4)
        return false;
    const std::uint32_t len = getU32(payload);
    if (len > kMaxTenantIdLen || std::size_t(len) + 4 != size ||
        len == 0)
        return false;
    tenant_id.assign(payload + 4, len);
    return true;
}

std::string
encodeNackPayload(NackCode code, const std::string &msg)
{
    std::string out;
    putU32(out, static_cast<std::uint32_t>(code));
    putU32(out, std::uint32_t(msg.size()));
    out.append(msg);
    return out;
}

bool
decodeNackPayload(const char *payload, std::size_t size,
                  NackCode &code, std::string &msg)
{
    if (size < 8)
        return false;
    const std::uint32_t raw = getU32(payload);
    const std::uint32_t len = getU32(payload + 4);
    if (std::size_t(len) + 8 != size ||
        raw > static_cast<std::uint32_t>(NackCode::ProtocolError))
        return false;
    code = static_cast<NackCode>(raw);
    msg.assign(payload + 8, len);
    return true;
}

} // namespace eddie::wire
