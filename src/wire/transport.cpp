#include "transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "core/errors.h"

namespace eddie::wire
{

namespace
{

int
pollFd(int fd, short events, double deadline_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int timeout = -1;
    if (deadline_ms >= 0) {
        const double clamped =
            deadline_ms > 2147483647.0 ? 2147483647.0 : deadline_ms;
        timeout = int(std::ceil(clamped));
    }
    return ::poll(&pfd, 1, timeout);
}

/** Splits "host:port" (":0"/"port" = loopback + that port). */
void
splitHostPort(const std::string &addr, std::string &host,
              std::uint16_t &port)
{
    // .assign() instead of operator= dodges GCC 12's
    // -Werror=restrict false positive (see serve/chaos.cpp).
    host.assign("127.0.0.1");
    std::string port_str;
    const std::size_t colon = addr.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            host.assign(addr, 0, colon);
        port_str.assign(addr, colon + 1, std::string::npos);
    } else {
        port_str.assign(addr);
    }
    if (port_str.empty())
        port_str.push_back('0');
    unsigned long parsed = 0;
    for (const char c : port_str) {
        if (c >= '0' && c <= '9')
            parsed = parsed * 10 + unsigned(c - '0');
        else
            parsed = 65536;
        if (parsed > 65535) {
            errno = EINVAL;
            throw core::ioErrorErrno("wire: parse port", addr);
        }
    }
    port = std::uint16_t(parsed);
}

struct sockaddr_in
tcpAddr(const std::string &addr)
{
    std::string host;
    std::uint16_t port = 0;
    splitHostPort(addr, host, port);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
        errno = EINVAL;
        throw core::ioErrorErrno("wire: parse host", addr);
    }
    return sa;
}

struct sockaddr_un
unixAddr(const std::string &path)
{
    struct sockaddr_un sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof sa.sun_path) {
        errno = ENAMETOOLONG;
        throw core::ioErrorErrno("wire: socket path", path);
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

} // namespace

Conn::~Conn()
{
    close();
}

Conn::Conn(Conn &&other) noexcept
    : fd_(other.fd_), last_errno_(other.last_errno_)
{
    other.fd_ = -1;
}

Conn &
Conn::operator=(Conn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        last_errno_ = other.last_errno_;
        other.fd_ = -1;
    }
    return *this;
}

bool
Conn::sendAll(const void *data, std::size_t size)
{
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            last_errno_ = errno;
            return false;
        }
        p += n;
        size -= std::size_t(n);
    }
    return true;
}

Conn::RecvStatus
Conn::recvSome(void *buf, std::size_t cap, double deadline_ms,
               std::size_t &got)
{
    got = 0;
    if (fd_ < 0) {
        last_errno_ = EBADF;
        return RecvStatus::Error;
    }
    const int ready = pollFd(fd_, POLLIN, deadline_ms);
    if (ready < 0) {
        if (errno == EINTR)
            return RecvStatus::Timeout;
        last_errno_ = errno;
        return RecvStatus::Error;
    }
    if (ready == 0)
        return RecvStatus::Timeout;
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n < 0) {
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return RecvStatus::Timeout;
        last_errno_ = errno;
        return RecvStatus::Error;
    }
    if (n == 0)
        return RecvStatus::Closed;
    got = std::size_t(n);
    return RecvStatus::Data;
}

void
Conn::shutdownSend()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Conn::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener::~Listener()
{
    close();
}

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), address_(std::move(other.address_)),
      unlink_path_(std::move(other.unlink_path_))
{
    other.fd_ = -1;
    other.unlink_path_.clear();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        address_ = std::move(other.address_);
        unlink_path_ = std::move(other.unlink_path_);
        other.fd_ = -1;
        other.unlink_path_.clear();
    }
    return *this;
}

Listener
Listener::tcp(const std::string &addr)
{
    struct sockaddr_in sa = tcpAddr(addr);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw core::ioErrorErrno("wire: socket", addr);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sa),
               sizeof sa) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: bind", addr);
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: listen", addr);
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                      &len) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: getsockname", addr);
    }
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof host);
    Listener out;
    out.fd_ = fd;
    // Built with += to dodge GCC 12's -Werror=restrict false positive
    // on operator+ chains (same workaround as serve/chaos.cpp).
    out.address_ = host;
    out.address_ += ':';
    out.address_ += std::to_string(ntohs(bound.sin_port));
    return out;
}

Listener
Listener::unixPath(const std::string &path)
{
    struct sockaddr_un sa = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw core::ioErrorErrno("wire: socket", path);
    // A stale socket file from a dead listener would make bind fail
    // with EADDRINUSE forever; replace it. (A *live* listener is
    // indistinguishable here — last bind wins, as with pid files.)
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sa),
               sizeof sa) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: bind", path);
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(path.c_str());
        errno = saved;
        throw core::ioErrorErrno("wire: listen", path);
    }
    Listener out;
    out.fd_ = fd;
    out.address_ = path;
    out.unlink_path_ = path;
    return out;
}

Conn
Listener::accept(double deadline_ms)
{
    if (fd_ < 0)
        return Conn();
    const int ready = pollFd(fd_, POLLIN, deadline_ms);
    if (ready <= 0)
        return Conn();
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0)
        return Conn();
    return Conn(fd);
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
    if (!unlink_path_.empty()) {
        ::unlink(unlink_path_.c_str());
        unlink_path_.clear();
    }
}

Conn
connectTcp(const std::string &addr)
{
    struct sockaddr_in sa = tcpAddr(addr);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw core::ioErrorErrno("wire: socket", addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&sa),
                  sizeof sa) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: connect", addr);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Conn(fd);
}

Conn
connectUnix(const std::string &path)
{
    struct sockaddr_un sa = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw core::ioErrorErrno("wire: socket", path);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&sa),
                  sizeof sa) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw core::ioErrorErrno("wire: connect", path);
    }
    return Conn(fd);
}

std::pair<Conn, Conn>
socketPair()
{
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw core::ioErrorErrno("wire: socketpair", "<pair>");
    return {Conn(fds[0]), Conn(fds[1])};
}

} // namespace eddie::wire
