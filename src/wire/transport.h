/**
 * @file
 * Byte transports for the EDDIEWIRE protocol: TCP sockets (loopback
 * or remote) and AF_UNIX stream sockets (the "named pipe" transport —
 * a filesystem path, but bidirectional, which NACK/ACK handshakes
 * require), plus socketpair() for in-process tests.
 *
 * Design rules, shared with the rest of the serve layer:
 *
 *  - Blocking fds + poll() deadlines, no global event loop: each
 *    connection already has a dedicated reader thread (the listener's
 *    per-session feeder), so readiness multiplexing would buy
 *    complexity, not throughput, at fleet sizes the scheduler caps.
 *  - Sends use MSG_NOSIGNAL: a vanished peer yields EPIPE/ECONNRESET
 *    through lastErrno(), a *counted connection error*, never a
 *    process-killing SIGPIPE (tools also ignore SIGPIPE for the
 *    non-socket write paths; see tools/signal_util.h).
 *  - Setup failures (bind, listen, connect) throw core::IoError with
 *    errno context; per-connection I/O failures return status codes —
 *    a lost peer is normal operation, a missing listen address is
 *    not.
 */

#ifndef EDDIE_WIRE_TRANSPORT_H
#define EDDIE_WIRE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace eddie::wire
{

/** One connected stream endpoint. Movable, owns the fd. */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();
    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Writes all @p size bytes (retrying short writes / EINTR).
     *  Blocking — this is where receive-window backpressure lands on
     *  a producer. False on failure with lastErrno() set (EPIPE and
     *  ECONNRESET are the lost-peer cases). */
    bool sendAll(const void *data, std::size_t size);

    enum class RecvStatus
    {
        /** @p got bytes were read (> 0). */
        Data,
        /** Deadline expired with nothing readable. */
        Timeout,
        /** Orderly close by the peer. */
        Closed,
        /** read()/poll() failed; lastErrno() has the cause. */
        Error,
    };

    /** Waits up to @p deadline_ms for readability, then reads once
     *  (up to @p cap bytes). */
    RecvStatus recvSome(void *buf, std::size_t cap, double deadline_ms,
                        std::size_t &got);

    /** Half-close of the send side (peer sees EOF after draining). */
    void shutdownSend();
    /** Full shutdown: wakes a thread blocked in recv/send on this fd
     *  from another thread (reader teardown path). */
    void shutdownBoth();
    void close();

    int lastErrno() const { return last_errno_; }

  private:
    int fd_ = -1;
    int last_errno_ = 0;
};

/** A bound, listening endpoint (TCP or AF_UNIX). */
class Listener
{
  public:
    Listener() = default;
    ~Listener();
    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Binds and listens on @p addr ("host:port", ":0" or "port" =
     *  loopback ephemeral). Throws core::IoError on failure. */
    static Listener tcp(const std::string &addr);

    /** Binds and listens on a filesystem socket path (an existing
     *  stale socket file is replaced). Throws core::IoError. */
    static Listener unixPath(const std::string &path);

    bool valid() const { return fd_ >= 0; }

    /** Accepts one connection, waiting up to @p deadline_ms; an
     *  invalid Conn means timeout or a closed listener. */
    Conn accept(double deadline_ms);

    /** Resolved address: "host:port" for TCP (the ephemeral port is
     *  filled in), the path for AF_UNIX. */
    const std::string &address() const { return address_; }

    /** Wakes a blocked accept() and closes the fd. The bound socket
     *  file of an AF_UNIX listener is unlinked. Idempotent. */
    void close();

  private:
    int fd_ = -1;
    std::string address_;
    std::string unlink_path_;
};

/** Connects to a TCP "host:port". Throws core::IoError on failure. */
Conn connectTcp(const std::string &addr);

/** Connects to an AF_UNIX socket path. Throws core::IoError. */
Conn connectUnix(const std::string &path);

/** Connected AF_UNIX pair (in-process tests; .first ↔ .second). */
std::pair<Conn, Conn> socketPair();

} // namespace eddie::wire

#endif // EDDIE_WIRE_TRANSPORT_H
