/**
 * @file
 * Sample sources for the serving runtime: where the offline pipeline
 * iterates a fully materialized STS vector, the supervised runtime
 * pulls windows one at a time from a SampleSource that may stall,
 * fail transiently, or end.
 *
 * Three layers compose:
 *  - VectorSource replays a captured stream and is seekable — the
 *    property checkpoint recovery needs (resume re-seeks the source
 *    to the checkpointed position and replays).
 *  - FlakySource wraps any source with the deterministic fault
 *    schedule of faults/source_faults.h (stalls and transient errors
 *    keyed by (seed, index, attempt), never data loss).
 *  - RetryingSource turns those recoverable statuses back into
 *    delivered windows via bounded retries with capped exponential
 *    backoff (backoff.h), surfacing a stall only after the attempt
 *    budget is exhausted.
 */

#ifndef EDDIE_SERVE_SAMPLE_SOURCE_H
#define EDDIE_SERVE_SAMPLE_SOURCE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "backoff.h"
#include "core/sts.h"
#include "faults/source_faults.h"

namespace eddie::serve
{

/** Outcome of one pull from a source. */
enum class PullStatus
{
    /** A window was delivered. */
    Ready,
    /** No data yet; retry later. */
    Stalled,
    /** The pull failed but the source is still alive; retry. */
    TransientError,
    /** The stream is exhausted; no further pulls will deliver. */
    EndOfStream,
};

/** One pull result; sts is meaningful only when status is Ready. */
struct Pull
{
    PullStatus status = PullStatus::EndOfStream;
    core::Sts sts;
};

/** Delivery-path counters, aggregated into ServeStats. */
struct SourceStats
{
    std::uint64_t delivered = 0;
    std::uint64_t stalls = 0;
    std::uint64_t errors = 0;
    /** Retry attempts spent recovering stalls/errors. */
    std::uint64_t retries = 0;
    /** Pulls abandoned after exhausting the retry budget. */
    std::uint64_t give_ups = 0;
};

/** Pull-based window stream. Implementations are single-consumer. */
class SampleSource
{
  public:
    virtual ~SampleSource() = default;

    /** Pulls the next window (or a non-Ready status). */
    virtual Pull next() = 0;

    /**
     * Repositions so the next delivered window is item @p pos.
     * Returns false for non-seekable sources; checkpoint recovery
     * requires true (serve/supervisor.h refuses to resume
     * otherwise).
     */
    virtual bool seek(std::uint64_t pos) = 0;

    /** Index of the next window to deliver. */
    virtual std::uint64_t position() const = 0;

    /** Delivery-path counters (wrappers aggregate their own). */
    virtual SourceStats stats() const { return {}; }
};

/** Replays a shared captured stream; seekable, never faults. */
class VectorSource : public SampleSource
{
  public:
    explicit VectorSource(
        std::shared_ptr<const std::vector<core::Sts>> stream);

    Pull next() override;
    bool seek(std::uint64_t pos) override;
    std::uint64_t position() const override { return pos_; }

  private:
    std::shared_ptr<const std::vector<core::Sts>> stream_;
    std::uint64_t pos_ = 0;
};

/**
 * Seekable source over a saved STS stream file ("EDDIESTS",
 * core/capture_io.h) — the file-backed input of tools/eddie_replay.
 * The stream is materialized eagerly at construction: replay files
 * are bounded capture artifacts, and an up-front decode turns a
 * corrupt file into a typed startup error instead of a mid-run
 * fault. Open failures throw core::IoError with errno context;
 * malformed content throws the capture codec's typed errors.
 */
class StsFileSource : public VectorSource
{
  public:
    explicit StsFileSource(const std::string &path);
};

/**
 * Wraps a source with the deterministic fault schedule of
 * faults/source_faults.h. Each call to next() consults the schedule
 * for (item index, attempt) and either injects a Stall /
 * TransientError (incrementing the per-item attempt counter) or
 * forwards to the inner source. Seeking resets the attempt counter,
 * so a replay after recovery sees the same schedule.
 */
class FlakySource : public SampleSource
{
  public:
    FlakySource(SampleSource &inner,
                const faults::SourceFaultConfig &faults);

    Pull next() override;
    bool seek(std::uint64_t pos) override;
    std::uint64_t position() const override { return inner_.position(); }
    SourceStats stats() const override { return stats_; }

  private:
    SampleSource &inner_;
    faults::SourceFaultConfig faults_;
    /** Faulted attempts spent on the item at the current position. */
    std::uint64_t attempt_ = 0;
    SourceStats stats_;
};

/** Retry policy for RetryingSource. */
struct RetryConfig
{
    /** Total attempts per window (first try included) before the
     *  pull is abandoned as a give-up. */
    std::size_t max_attempts = 8;
    BackoffConfig backoff;
};

/**
 * Retries Stalled / TransientError pulls with backoff until a window
 * is delivered or the attempt budget runs out. Delivery resets the
 * backoff schedule. The sleep is injectable so tests and benches run
 * the full retry logic without wall-clock waits.
 */
class RetryingSource : public SampleSource
{
  public:
    using SleepFn = std::function<void(double ms)>;

    /** @param sleep nullptr = real sleep (std::this_thread). */
    RetryingSource(SampleSource &inner, const RetryConfig &cfg,
                   SleepFn sleep = nullptr);

    /** Ready, EndOfStream, or Stalled after budget exhaustion (a
     *  counted give-up; the caller decides whether to re-pull). */
    Pull next() override;
    bool seek(std::uint64_t pos) override;
    std::uint64_t position() const override { return inner_.position(); }
    /** Full delivery accounting: every inner stall/error passes
     *  through this layer, so its counters cover the whole path. */
    SourceStats stats() const override;

  private:
    SampleSource &inner_;
    RetryConfig cfg_;
    Backoff backoff_;
    SleepFn sleep_;
    SourceStats stats_;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_SAMPLE_SOURCE_H
