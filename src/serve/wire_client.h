/**
 * @file
 * Client half of the wire protocol: streams a seekable SampleSource
 * to a WireListener, surviving disconnects the way RetryingSource
 * survives pull faults — capped-exponential backoff (serve/backoff.h)
 * plus replay from the server's last ACK. The server dedups the
 * replay overlap and refuses gaps, so delivery is exactly-once
 * in-order no matter how many times the link drops mid-batch.
 *
 * The client is also the chaos harness's byte-level fault injector:
 * WireChaosConfig draws a deterministic per-batch fate from
 * faults::fateMix (the same splitmix finalizer behind every other
 * fate stream in the repo) and mutates its OWN traffic — torn
 * frames, clean mid-stream disconnects, duplicated and skip-ahead
 * (reordered) replays, corrupted bytes, and hostile length fields.
 * Like serve/chaos.h, a per-sequence attempt cap forces a clean send
 * after max_consecutive faulted tries, so chaos delays delivery but
 * cannot livelock a stream. Every injected fault is counted in the
 * report; the invariant (proved by the chaos wire phase) is that the
 * server's verdicts stay bit-identical anyway.
 */

#ifndef EDDIE_SERVE_WIRE_CLIENT_H
#define EDDIE_SERVE_WIRE_CLIENT_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "backoff.h"
#include "sample_source.h"
#include "wire/frame.h"

namespace eddie::serve
{

/** Deterministic byte-level fault injection (all off by default). */
struct WireChaosConfig
{
    std::uint64_t seed = 1;
    /** Send a torn prefix of the frame, then drop the link. */
    double tear_prob = 0.0;
    /** Send the full batch, then drop the link (mid-stream cut). */
    double disconnect_prob = 0.0;
    /** Re-send the previous batch before the current one (duplicate
     *  the server must drop). */
    double duplicate_prob = 0.0;
    /** Send the batch with a skip-ahead sequence (a reorder the
     *  server must refuse as a gap). */
    double reorder_prob = 0.0;
    /** Flip one byte of the encoded frame (CRC must catch it). */
    double corrupt_prob = 0.0;
    /** Send a header whose length field exceeds the server's payload
     *  cap (valid CRCs — only the bound check can refuse it). */
    double hostile_len_prob = 0.0;
    /** Faulted sends tolerated per batch sequence before the send is
     *  forced clean (termination cap, as in serve/chaos.h). */
    std::uint64_t max_consecutive = 2;
};

struct WireClientConfig
{
    /** TCP "host:port" (used when non-empty, else unix_path). */
    std::string tcp;
    std::string unix_path;
    std::string tenant = "default";
    /** Client-chosen session key, stable across reconnects. */
    std::uint64_t session = 1;
    /** Windows per STS-BATCH frame. */
    std::size_t batch_windows = 32;
    /** Consecutive no-progress attempts (connect or handshake
     *  failures) before giving up; progress resets the count. */
    std::size_t max_attempts = 16;
    BackoffConfig backoff;
    /** Handshake / final-ACK wait. */
    double ack_timeout_ms = 10000.0;
    /** Idle nap while the source itself stalls. */
    double stall_nap_ms = 10.0;
    WireChaosConfig chaos;
    /** Injectable sleep (tests/bench); nullptr = real sleep. */
    std::function<void(double ms)> sleep;
};

/** Everything one stream() call did — fault counters feed the chaos
 *  report, delivery counters feed the bench. */
struct WireClientReport
{
    /** The server ACKed the EOF at the full stream length. */
    bool delivered_all = false;
    /** Non-empty when the client gave up (fatal NACK, attempts
     *  exhausted, non-seekable source). */
    std::string error;

    std::uint64_t windows_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;
    /** Windows re-sent below the resume point after a reconnect. */
    std::uint64_t windows_replayed = 0;
    std::uint64_t nacks_received = 0;

    /** Injected-fault counters (chaos accounting). */
    std::uint64_t torn_frames = 0;
    std::uint64_t forced_disconnects = 0;
    std::uint64_t duplicate_batches = 0;
    std::uint64_t reordered_batches = 0;
    std::uint64_t corrupted_frames = 0;
    std::uint64_t hostile_lengths = 0;
};

class WireClient
{
  public:
    explicit WireClient(WireClientConfig cfg);

    /**
     * Streams @p src to the configured endpoint until the server
     * ACKs EOF (delivered_all) or the client gives up (error set).
     * @p src must be seekable: every (re)connect seeks it to the
     * server's ACKed resume point.
     */
    WireClientReport stream(SampleSource &src);

  private:
    WireClientConfig cfg_;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_WIRE_CLIENT_H
