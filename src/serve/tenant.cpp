#include "tenant.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace eddie::serve
{

RestartBudget::RestartBudget(std::size_t budget, double window_ms)
    : budget_(budget), window_ms_(window_ms)
{
}

bool
RestartBudget::allow(double now_ms)
{
    if (escalated_)
        return false;
    while (!times_.empty() && now_ms - times_.front() > window_ms_)
        times_.pop_front();
    if (times_.size() >= budget_) {
        escalated_ = true;
        return false;
    }
    times_.push_back(now_ms);
    return true;
}

std::size_t
RestartBudget::used(double now_ms) const
{
    while (!times_.empty() && now_ms - times_.front() > window_ms_)
        times_.pop_front();
    return times_.size();
}

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(std::max(rate_per_s, 0.0)),
      burst_(std::max(burst, 1.0)), tokens_(burst_)
{
}

void
TokenBucket::refill(double now_ms) const
{
    if (now_ms > last_ms_) {
        tokens_ = std::min(
            burst_, tokens_ + (now_ms - last_ms_) * 1e-3 * rate_per_s_);
        last_ms_ = now_ms;
    }
}

bool
TokenBucket::tryTake(double now_ms, double n)
{
    if (rate_per_s_ <= 0.0)
        return true;
    refill(now_ms);
    if (tokens_ + 1e-9 < n)
        return false;
    tokens_ -= n;
    return true;
}

double
TokenBucket::deficitMs(double now_ms, double n) const
{
    if (rate_per_s_ <= 0.0)
        return 0.0;
    refill(now_ms);
    if (tokens_ >= n)
        return 0.0;
    return (n - tokens_) / rate_per_s_ * 1e3;
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg)
{
}

bool
CircuitBreaker::record(FaultClass cls, double now_ms)
{
    ++counts_[std::size_t(cls)];
    if (tripped_)
        return true;
    switch (cls) {
    case FaultClass::WorkerFault:
        if (cfg_.fault_threshold == 0)
            break;
        while (!fault_times_.empty() &&
               now_ms - fault_times_.front() > cfg_.window_ms)
            fault_times_.pop_front();
        fault_times_.push_back(now_ms);
        if (fault_times_.size() >= cfg_.fault_threshold) {
            tripped_ = true;
            cause_ = cls;
        }
        break;
    case FaultClass::QuarantineStorm:
        // The storm-length judgment lives with the caller (it sees
        // the outage run length); one reported storm trips.
        tripped_ = true;
        cause_ = cls;
        break;
    case FaultClass::CheckpointDecode:
        if (cfg_.decode_failure_threshold != 0 &&
            counts_[std::size_t(cls)] >=
                cfg_.decode_failure_threshold) {
            tripped_ = true;
            cause_ = cls;
        }
        break;
    }
    return tripped_;
}

std::uint64_t
CircuitBreaker::count(FaultClass cls) const
{
    return counts_[std::size_t(cls)];
}

Tenant::Tenant(TenantSpec spec, std::size_t index)
    : spec_(std::move(spec)), index_(index),
      budget_(spec_.quota.restart_budget,
              spec_.quota.restart_window_ms),
      breaker_(spec_.breaker),
      bucket_(spec_.quota.sts_per_s, spec_.quota.burst)
{
}

RateDecision
Tenant::admitWindow(double now_ms, double &wait_ms)
{
    wait_ms = 0.0;
    std::lock_guard<std::mutex> lock(bucket_mu_);
    if (bucket_.tryTake(now_ms))
        return RateDecision::Admit;
    if (spec_.quota.rate_policy == RatePolicy::Shed) {
        ++shed_;
        return RateDecision::Shed;
    }
    wait_ms = bucket_.deficitMs(now_ms);
    ++throttled_;
    return RateDecision::Throttle;
}

TenantRegistry::TenantRegistry(AdmissionConfig cfg) : cfg_(cfg)
{
}

Tenant &
TenantRegistry::addTenant(TenantSpec spec)
{
    if (spec.id.empty())
        throw std::invalid_argument("tenant: empty id");
    if (tenants_.count(spec.id) != 0)
        throw std::invalid_argument("tenant: duplicate id " + spec.id);
    auto tenant =
        std::make_unique<Tenant>(std::move(spec), order_.size());
    Tenant &ref = *tenant;
    order_.push_back(&ref);
    tenants_.emplace(ref.id(), std::move(tenant));
    return ref;
}

Tenant *
TenantRegistry::find(const std::string &id)
{
    auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : it->second.get();
}

const Tenant *
TenantRegistry::find(const std::string &id) const
{
    auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : it->second.get();
}

TenantRegistry::OpenResult
TenantRegistry::openSession(const std::string &tenant_id,
                            SampleSource *source)
{
    OpenResult res;
    Tenant *tenant = find(tenant_id);
    if (tenant == nullptr) {
        ++stats_.rejected_unknown_tenant;
        res.reason = ShedReason::UnknownTenant;
        return res;
    }
    if (tenant->breaker().tripped()) {
        ++stats_.rejected_breaker_open;
        res.reason = ShedReason::BreakerOpen;
        return res;
    }
    if (cfg_.max_sessions != 0 &&
        sessions_.size() >= cfg_.max_sessions) {
        ++stats_.rejected_fleet_limit;
        res.reason = ShedReason::FleetSessionLimit;
        return res;
    }
    const auto &quota = tenant->spec().quota;
    if (quota.max_sessions != 0 &&
        tenant->open_sessions_ >= quota.max_sessions) {
        ++stats_.rejected_tenant_limit;
        res.reason = ShedReason::TenantSessionLimit;
        return res;
    }
    TenantSession session;
    session.tenant = tenant;
    session.source = source;
    session.ordinal = tenant->open_sessions_++;
    res.admitted = true;
    res.reason = ShedReason::RateShed; // unused when admitted
    res.session = sessions_.size();
    sessions_.push_back(session);
    ++stats_.sessions_admitted;
    return res;
}

AdmissionStats
TenantRegistry::admissionStats() const
{
    return stats_;
}

void
TenantRegistry::noteRateCounters(std::uint64_t shed,
                                 std::uint64_t throttled)
{
    stats_.windows_shed += shed;
    stats_.windows_throttled += throttled;
}

const char *
name(FaultClass cls)
{
    switch (cls) {
    case FaultClass::WorkerFault:
        return "worker-fault";
    case FaultClass::QuarantineStorm:
        return "quarantine-storm";
    case FaultClass::CheckpointDecode:
        return "checkpoint-decode";
    }
    return "unknown";
}

const char *
name(ShedReason reason)
{
    switch (reason) {
    case ShedReason::FleetSessionLimit:
        return "fleet-session-limit";
    case ShedReason::TenantSessionLimit:
        return "tenant-session-limit";
    case ShedReason::UnknownTenant:
        return "unknown-tenant";
    case ShedReason::BreakerOpen:
        return "breaker-open";
    case ShedReason::RateShed:
        return "rate-shed";
    }
    return "unknown";
}

} // namespace eddie::serve
