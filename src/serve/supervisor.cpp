#include "supervisor.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>
#include <utility>

#include "common/crc32.h"
#include "core/errors.h"

namespace eddie::serve
{

namespace
{

/** Steady-clock milliseconds (monotonic; only differences matter). */
double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

void
sleepMs(double ms)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::max(ms, 0.0)));
}

/** Worker poll timeout; short enough that heartbeats stay far fresher
 *  than any sane watchdog deadline while the queue is empty. */
constexpr double kPopTimeoutMs = 2.0;

/** Shard lifecycle states (stored in an atomic<int>). */
enum ShardStatus : int
{
    kRunning = 0,
    kEof,       ///< source exhausted, queue drained, final checkpoint
    kStopped,   ///< graceful stop before EOF
    kCrashed,   ///< worker caught an exception from the step
    kEscalated, ///< restart budget exhausted; degraded mode
};

enum class FailureKind
{
    Crash,
    Hang,
    SourceDead,
};

} // namespace

/** One source + queue + monitor worker under supervision. Threads
 *  capture a reference; shards live behind unique_ptr so the address
 *  is stable for the whole run. */
struct Supervisor::Shard
{
    std::size_t index = 0;
    SampleSource *source = nullptr;

    /** Fleet mode only; nullptr = legacy single-tenant run. */
    Tenant *tenant = nullptr;
    /** Store this shard checkpoints into (legacy: store_; fleet: the
     *  tenant's store) and its shard id within that store. */
    CheckpointStore *store = nullptr;
    std::size_t store_shard = 0;
    /** Per-shard queue bound (fleet: from the tenant quota). */
    StsQueueConfig queue_cfg;
    /** Live longest-quarantine-run, published by the worker after
     *  each step so the watchdog can spot a quarantine storm without
     *  touching the Monitor across threads. */
    std::atomic<std::uint64_t> longest_outage{0};

    /** Keeps the model the monitor references alive across hot
     *  reloads (Monitor holds a reference, not ownership). */
    std::shared_ptr<const core::TrainedModel> model;
    std::unique_ptr<core::Monitor> monitor;
    std::unique_ptr<StsQueue> queue;
    /** Queue counters accumulated across restarts (a restart swaps in
     *  a fresh queue). Guarded by Supervisor::mu_. */
    QueueStats queue_acc;
    /** Source counters snapshotted while the feeder is quiescent.
     *  Guarded by Supervisor::mu_. */
    SourceStats source_snap;

    std::thread feeder;
    std::thread worker;
    /** Teardown flag; honored by both loops and by step hooks. */
    std::atomic<bool> cancel{false};
    /** Completed-step counter — the watchdog's progress signal (a
     *  hang is in_step held with this frozen past the deadline). */
    std::atomic<std::uint64_t> progress_seq{0};
    std::atomic<bool> in_step{false};
    // Watchdog-only hang tracking (single-threaded access).
    std::uint64_t wd_seen_seq = 0;
    double wd_seen_ms = 0.0;
    /** Feeder saw the delivery path give up past its retry budget. */
    std::atomic<bool> source_dead{false};
    std::atomic<int> status{kRunning};
    std::atomic<std::uint64_t> processed{0};

    RestartBudget budget{0, 0.0};
};

Supervisor::Supervisor(std::shared_ptr<const core::TrainedModel> model,
                       ServeConfig cfg)
    : model_(std::move(model)), cfg_(std::move(cfg))
{
    if (!model_)
        throw core::Error("supervisor: null model");
}

Supervisor::Supervisor(ServeConfig cfg) : cfg_(std::move(cfg))
{
}

Supervisor::~Supervisor() = default;

std::shared_ptr<const core::TrainedModel>
Supervisor::model() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return model_;
}

void
Supervisor::feederLoop(Shard &shard)
{
    while (!shard.cancel.load() && !stop_.load()) {
        if (shard.tenant != nullptr) {
            // Per-tenant STS/s quota, enforced *before* the pull so
            // Throttle delays delivery without reordering or losing
            // windows (verdicts stay bit-identical); Shed consumes
            // the pull and drops it, counted.
            double wait_ms = 0.0;
            const RateDecision d =
                shard.tenant->admitWindow(nowMs(), wait_ms);
            if (d == RateDecision::Throttle) {
                // Bounded naps so cancel/stop stay responsive.
                sleepMs(std::min(wait_ms, 1.0));
                continue;
            }
            if (d == RateDecision::Shed) {
                Pull shed = shard.source->next();
                if (shed.status == PullStatus::EndOfStream) {
                    shard.queue->close();
                    return;
                }
                if (shed.status == PullStatus::Stalled ||
                    shed.status == PullStatus::TransientError) {
                    shard.source_dead.store(true);
                    return;
                }
                continue;
            }
        }
        Pull pull = shard.source->next();
        switch (pull.status) {
        case PullStatus::Ready:
            if (!shard.queue->push(std::move(pull.sts)))
                return; // queue closed under us: teardown or stop
            continue;
        case PullStatus::EndOfStream:
            shard.queue->close();
            return;
        case PullStatus::Stalled:
        case PullStatus::TransientError:
            // Surfaced past the retry layer: the delivery path is out
            // of budget. Flag it for the watchdog (restart/escalate)
            // rather than spinning against a dead source.
            shard.source_dead.store(true);
            return;
        }
    }
    if (stop_.load())
        shard.queue->close();
}

void
Supervisor::cutDelta(Shard &shard)
{
    shard.store->submitDelta(shard.store_shard,
                             shard.monitor->exportDelta());
    checkpoints_written_.fetch_add(1);
}

void
Supervisor::workerLoop(Shard &shard)
{
    std::size_t since_ckpt = 0;
    std::vector<core::Sts> batch;
    batch.reserve(std::max<std::size_t>(cfg_.queue_batch, 1));
    // Stage timings, accumulated locally and published once per
    // batch: three atomic adds per batch instead of per window.
    double wait_ms = 0.0, work_ms = 0.0, cut_ms = 0.0;
    const auto publish = [&] {
        queue_wait_ms_.fetch_add(wait_ms);
        step_ms_.fetch_add(work_ms);
        checkpoint_ms_.fetch_add(cut_ms);
        wait_ms = work_ms = cut_ms = 0.0;
    };
    while (true) {
        if (shard.cancel.load()) {
            publish();
            return; // watchdog teardown; it sets the next status
        }
        if (stop_.load()) {
            // The final cut rides the supervisor's closing flush —
            // one group commit for all shards instead of a disk
            // round-trip per worker exit.
            cutDelta(shard);
            publish();
            shard.status.store(kStopped);
            shard.queue->close(); // unblocks a feeder stuck pushing
            return;
        }
        const double t_wait = nowMs();
        const std::size_t n = shard.queue->popBatch(
            batch, std::max<std::size_t>(cfg_.queue_batch, 1),
            kPopTimeoutMs);
        wait_ms += nowMs() - t_wait;
        if (n == 0) {
            if (shard.queue->drained()) {
                cutDelta(shard); // lands in the supervisor's flush
                publish();
                shard.status.store(kEof);
                return;
            }
            continue; // idle poll; heartbeat stays fresh
        }
        for (core::Sts &sts : batch) {
            if (shard.cancel.load()) {
                publish();
                return;
            }
            if (stop_.load()) {
                cutDelta(shard); // lands in the supervisor's flush
                publish();
                shard.status.store(kStopped);
                shard.queue->close();
                return;
            }
            shard.in_step.store(true);
            const double t_step = nowMs();
            try {
                if (hook_)
                    hook_(shard.monitor->records().size(),
                          shard.cancel);
                if (fleet_hook_ && shard.tenant != nullptr)
                    fleet_hook_(shard.index, shard.tenant->id(),
                                shard.monitor->records().size(),
                                shard.cancel);
                shard.monitor->step(sts);
            } catch (...) {
                shard.in_step.store(false);
                publish();
                shard.status.store(kCrashed);
                return;
            }
            work_ms += nowMs() - t_step;
            shard.in_step.store(false);
            shard.progress_seq.fetch_add(1);
            shard.processed.fetch_add(1);
            if (shard.tenant != nullptr)
                shard.longest_outage.store(
                    shard.monitor->degradedStats().longest_outage);
            if (cfg_.checkpoint_interval != 0 &&
                ++since_ckpt >= cfg_.checkpoint_interval) {
                since_ckpt = 0;
                const double t_cut = nowMs();
                cutDelta(shard);
                cut_ms += nowMs() - t_cut;
            }
        }
        publish();
    }
}

void
Supervisor::startShard(Shard &shard, bool restoring)
{
    {
        // stats() dereferences shard.queue under mu_, so the swap to
        // a fresh queue must be guarded too.
        std::lock_guard<std::mutex> lock(mu_);
        shard.queue = std::make_unique<StsQueue>(shard.queue_cfg);
    }
    shard.cancel.store(false);
    shard.in_step.store(false);
    shard.source_dead.store(false);
    shard.wd_seen_seq = shard.progress_seq.load();
    shard.wd_seen_ms = nowMs();
    shard.status.store(kRunning);
    if (restoring)
        checkpoint_restores_.fetch_add(1);
    shard.feeder = std::thread([this, &shard] { feederLoop(shard); });
    shard.worker = std::thread([this, &shard] { workerLoop(shard); });
}

void
Supervisor::stopShardThreads(Shard &shard)
{
    shard.cancel.store(true);
    if (shard.queue)
        shard.queue->close();
    if (shard.feeder.joinable())
        shard.feeder.join();
    if (shard.worker.joinable())
        shard.worker.join();
    std::lock_guard<std::mutex> lock(mu_);
    if (shard.queue) {
        const QueueStats q = shard.queue->stats();
        shard.queue_acc.pushed += q.pushed;
        shard.queue_acc.popped += q.popped;
        shard.queue_acc.dropped_oldest += q.dropped_oldest;
        shard.queue_acc.blocked_pushes += q.blocked_pushes;
        shard.queue_acc.spurious_wakeups += q.spurious_wakeups;
        shard.queue_acc.max_depth =
            std::max(shard.queue_acc.max_depth, q.max_depth);
        shard.queue.reset();
    }
    shard.source_snap = shard.source->stats();
}

void
Supervisor::handleFailure(Shard &shard, double now_ms)
{
    const int status = shard.status.load();
    FailureKind kind = FailureKind::Hang;
    if (status == kCrashed)
        kind = FailureKind::Crash;
    else if (shard.source_dead.load())
        kind = FailureKind::SourceDead;
    switch (kind) {
    case FailureKind::Crash:
        worker_crashes_.fetch_add(1);
        break;
    case FailureKind::Hang:
        worker_hangs_.fetch_add(1);
        break;
    case FailureKind::SourceDead:
        break; // already counted in the source's give_ups
    }

    stopShardThreads(shard);

    // Fleet mode: every restart-worthy fault also feeds the tenant's
    // circuit breaker; a trip isolates the WHOLE tenant (neighbors
    // untouched) instead of burning budget on a rotten tenant.
    if (shard.tenant != nullptr &&
        shard.tenant->breaker().record(FaultClass::WorkerFault,
                                       now_ms)) {
        escalateTenant(*shard.tenant);
        return;
    }

    // The store mirror is the shard's newest cut (deltas are applied
    // to it synchronously on submit, before any disk latency).
    const CheckpointData ckpt = shard.store->mirror(shard.store_shard);
    RestartBudget &budget =
        shard.tenant != nullptr ? shard.tenant->budget() : shard.budget;
    bool restartable = budget.allow(now_ms);
    if (restartable)
        restartable = shard.source->seek(ckpt.source_pos);
    if (!restartable) {
        escalations_.fetch_add(1);
        shard.status.store(kEscalated);
        return;
    }

    if (shard.tenant == nullptr) {
        std::shared_ptr<const core::TrainedModel> model;
        {
            std::lock_guard<std::mutex> lock(mu_);
            model = model_;
        }
        shard.model = std::move(model);
    }
    // Fleet shards keep their tenant's model (no hot reload there).
    shard.monitor =
        std::make_unique<core::Monitor>(*shard.model, cfg_.monitor);
    shard.monitor->restoreState(ckpt.monitor);
    startShard(shard, true);
    worker_restarts_.fetch_add(1);
    restart_latency_ms_.fetch_add(nowMs() - now_ms);
}

void
Supervisor::escalateTenant(Tenant &tenant)
{
    breaker_trips_.fetch_add(1);
    for (auto &sp : shards_) {
        Shard &shard = *sp;
        if (shard.tenant != &tenant)
            continue;
        const int status = shard.status.load();
        if (status == kEof || status == kStopped ||
            status == kEscalated)
            continue;
        stopShardThreads(shard);
        escalations_.fetch_add(1);
        shard.status.store(kEscalated);
    }
}

void
Supervisor::maybeReloadModel(double now_ms)
{
    if (cfg_.model_path.empty())
        return;
    if (now_ms - last_model_poll_ms_ < cfg_.model_poll_ms)
        return;
    last_model_poll_ms_ = now_ms;
    const auto crc = common::crc32File(cfg_.model_path);
    if (!crc || *crc == model_crc_)
        return;
    std::shared_ptr<const core::TrainedModel> fresh;
    try {
        // Format-sniffing loader: an EDDIEARC model reloads as mmap +
        // sector CRC check + binary decode (the hot-reload fast path
        // benched in perf_pipeline's artifact_store section); a text
        // model takes the legacy parse.
        fresh = std::make_shared<const core::TrainedModel>(
            core::loadModelFile(cfg_.model_path));
    } catch (const std::exception &) {
        // Half-written or corrupt artifact: keep serving the current
        // model; the next poll re-checks the CRC.
        return;
    }
    // A file truncated before its #crc32 trailer still parses (the
    // trailer is optional for legacy models), so require the bytes to
    // be stable across the load: if the CRC moved, a write is in
    // flight — skip, and the next poll sees the finished file.
    const auto crc_after = common::crc32File(cfg_.model_path);
    if (!crc_after || *crc_after != *crc)
        return;
    model_crc_ = *crc;
    {
        std::lock_guard<std::mutex> lock(mu_);
        model_ = fresh;
    }
    model_reloads_.fetch_add(1);

    // Live-restart every active shard on the new model from its
    // *current* state (not the last checkpoint): no verdicts are lost
    // and the restart budget is not charged — a reload is an
    // operator action, not a failure.
    for (auto &sp : shards_) {
        Shard &shard = *sp;
        if (shard.status.load() != kRunning)
            continue;
        stopShardThreads(shard);
        CheckpointData ckpt;
        ckpt.monitor = shard.monitor->exportState();
        ckpt.source_pos = ckpt.monitor.step_index;
        if (!shard.source->seek(ckpt.source_pos)) {
            escalations_.fetch_add(1);
            shard.status.store(kEscalated);
            continue;
        }
        shard.model = fresh;
        shard.monitor = std::make_unique<core::Monitor>(
            *shard.model, cfg_.monitor);
        shard.monitor->restoreState(ckpt.monitor);
        // A full-state submit re-anchors the shard's delta chain;
        // the forced snapshot on the next flush makes it durable.
        store_->submitFull(shard.index, ckpt);
        checkpoints_written_.fetch_add(1);
        startShard(shard, false);
    }
    store_->flush();
}

std::vector<ShardResult>
Supervisor::run(const std::vector<SampleSource *> &sources)
{
    if (!model_)
        throw core::Error(
            "supervisor: run() on a fleet-mode supervisor");
    stop_.store(false);
    {
        std::lock_guard<std::mutex> lock(mu_);
        registry_ = nullptr; // drop a previous fleet run's registry
        fleet_sched_.reset();
        shards_.clear();
        for (std::size_t i = 0; i < sources.size(); ++i) {
            auto shard = std::make_unique<Shard>();
            shard->index = i;
            shard->source = sources[i];
            shard->queue_cfg = cfg_.queue;
            shard->budget = RestartBudget(cfg_.watchdog.restart_budget,
                                          cfg_.watchdog.restart_window_ms);
            shards_.push_back(std::move(shard));
        }
    }
    CheckpointStoreConfig store_cfg;
    store_cfg.path = cfg_.checkpoint_path;
    store_cfg.num_shards = sources.size();
    store_cfg.full_every = cfg_.full_snapshot_every;
    store_cfg.use_archive = cfg_.checkpoint_archive;
    store_ = std::make_unique<CheckpointStore>(store_cfg);
    for (auto &sp : shards_) {
        sp->store = store_.get();
        sp->store_shard = sp->index;
    }
    std::vector<bool> recovered(sources.size(), false);
    if (cfg_.resume)
        recovered = store_->recover();
    if (!cfg_.model_path.empty())
        model_crc_ = common::crc32File(cfg_.model_path).value_or(0);
    last_model_poll_ms_ = nowMs();

    for (auto &sp : shards_) {
        Shard &shard = *sp;
        shard.model = model_;
        shard.monitor = std::make_unique<core::Monitor>(
            *shard.model, cfg_.monitor);
        bool restoring = false;
        if (recovered[shard.index]) {
            const CheckpointData ckpt = store_->mirror(shard.index);
            if (shard.source->seek(ckpt.source_pos)) {
                shard.monitor->restoreState(ckpt.monitor);
                restoring = true;
            }
        }
        // Seed the restart mirror so a failure before the first
        // periodic cut still restores instead of escalating. For a
        // resumed shard this re-anchors the recovered chain: the
        // first flush compacts it into a fresh full snapshot.
        CheckpointData seed;
        seed.monitor = shard.monitor->exportState();
        seed.source_pos = seed.monitor.step_index;
        store_->submitFull(shard.index, std::move(seed));
        startShard(shard, restoring);
    }

    while (true) {
        sleepMs(cfg_.watchdog.poll_interval_ms);
        const double now = nowMs();
        if (stop_check_ && stop_check_())
            stop_.store(true);
        if (!stop_.load())
            maybeReloadModel(now);
        bool all_done = true;
        for (auto &sp : shards_) {
            Shard &shard = *sp;
            const int status = shard.status.load();
            if (status == kEof || status == kStopped ||
                status == kEscalated)
                continue;
            all_done = false;
            // Progress-sequence liveness: refresh while the shard
            // advances or rests between steps; hung = in_step held
            // with a frozen sequence past the deadline.
            const std::uint64_t seq = shard.progress_seq.load();
            bool hung = false;
            if (seq != shard.wd_seen_seq || !shard.in_step.load()) {
                shard.wd_seen_seq = seq;
                shard.wd_seen_ms = now;
            } else {
                hung = now - shard.wd_seen_ms >
                       cfg_.watchdog.heartbeat_deadline_ms;
            }
            if (status == kCrashed || shard.source_dead.load() || hung)
                handleFailure(shard, now);
        }
        // The group commit: every shard's pending deltas land in one
        // buffered append + one flush per poll, instead of N
        // rewrite-the-world file replacements per checkpoint cut.
        store_->flush();
        if (all_done)
            break;
    }
    store_->flush();

    std::vector<ShardResult> results(shards_.size());
    for (auto &sp : shards_) {
        Shard &shard = *sp;
        if (shard.feeder.joinable())
            shard.feeder.join();
        if (shard.worker.joinable())
            shard.worker.join();
        {
            std::lock_guard<std::mutex> lock(mu_);
            shard.source_snap = shard.source->stats();
        }
        ShardResult &out = results[shard.index];
        const int status = shard.status.load();
        if (status == kEscalated) {
            const CheckpointData ckpt =
                shard.store->mirror(shard.store_shard);
            out.records = ckpt.monitor.records;
            out.reports = ckpt.monitor.reports;
            out.degraded = ckpt.monitor.degraded;
            out.escalated = true;
        } else {
            out.records = shard.monitor->records();
            out.reports = shard.monitor->reports();
            out.degraded = shard.monitor->degradedStats();
            out.stopped = status == kStopped;
        }
        out.steps = out.records.size();
    }
    return results;
}

FleetResult
Supervisor::runFleet(TenantRegistry &registry)
{
    stop_.store(false);
    const auto &sessions = registry.sessions();
    const auto &tenants = registry.tenants();
    const double t0 = nowMs();

    // One checkpoint store per tenant — THE per-tenant fault domain.
    // Archive mode: every store keys into one shared container under
    // "tenant/<id>/" (only the watchdog thread flushes, so the shared
    // stage/commit batches never interleave). File mode: a private
    // snapshot+log pair per tenant at path + "." + id.
    fleet_archive_.reset();
    tenant_stores_.clear();
    if (cfg_.checkpoint_archive && !cfg_.checkpoint_path.empty()) {
        store::ArchiveConfig arc;
        arc.path = cfg_.checkpoint_path + ".arc";
        fleet_archive_ = std::make_unique<store::Archive>(arc);
    }
    std::vector<std::size_t> tenant_sessions(tenants.size(), 0);
    for (const auto &session : sessions)
        ++tenant_sessions[session.tenant->index()];
    for (Tenant *tenant : tenants) {
        CheckpointStoreConfig sc;
        sc.num_shards =
            std::max<std::size_t>(tenant_sessions[tenant->index()], 1);
        sc.full_every = cfg_.full_snapshot_every;
        if (fleet_archive_) {
            sc.shared_archive = fleet_archive_.get();
            sc.key_prefix = "tenant/" + tenant->id() + "/";
        } else if (!cfg_.checkpoint_path.empty()) {
            sc.path = cfg_.checkpoint_path + "." + tenant->id();
        }
        tenant_stores_.push_back(
            std::make_unique<CheckpointStore>(sc));
    }

    // Per-tenant recovery. A snapshot that exists but fails to decode
    // is checkpoint rot: it feeds the tenant's breaker (default
    // threshold 1 → the tenant is isolated before it serves a single
    // window off a corrupt base), while its neighbors resume cleanly.
    std::vector<bool> recovered;
    std::vector<std::size_t> recovered_base(tenants.size(), 0);
    {
        std::size_t base = 0;
        for (Tenant *tenant : tenants) {
            recovered_base[tenant->index()] = base;
            auto &store = tenant_stores_[tenant->index()];
            std::vector<bool> rec(
                std::max<std::size_t>(
                    tenant_sessions[tenant->index()], 1),
                false);
            if (cfg_.resume) {
                rec = store->recover();
                const auto cs = store->stats();
                const bool was_tripped = tenant->breaker().tripped();
                for (std::uint64_t i = 0;
                     i < cs.snapshot_decode_failures; ++i)
                    if (tenant->breaker().record(
                            FaultClass::CheckpointDecode, t0))
                        break;
                if (!was_tripped && tenant->breaker().tripped())
                    breaker_trips_.fetch_add(1);
            }
            recovered.insert(recovered.end(), rec.begin(), rec.end());
            base += rec.size();
        }
    }

    // Event-driven fair-share runtime: multiplex every admitted
    // session over cfg_.scheduler.workers threads (DESIGN.md §10).
    // Store/recovery/breaker setup above is shared; only the
    // execution engine differs, and verdicts are bit-identical.
    if (cfg_.scheduler.workers > 0) {
        std::vector<SchedulerSessionSpec> specs;
        specs.reserve(sessions.size());
        for (const TenantSession &session : sessions) {
            SchedulerSessionSpec spec;
            spec.tenant = session.tenant;
            spec.source = session.source;
            spec.store =
                tenant_stores_[session.tenant->index()].get();
            spec.store_shard = session.ordinal;
            spec.queue = cfg_.queue;
            const TenantQuota &quota = session.tenant->spec().quota;
            spec.queue.capacity =
                std::max<std::size_t>(quota.queue_capacity, 1);
            spec.queue.max_bytes = quota.queue_max_bytes;
            spec.born_escalated = session.tenant->breaker().tripped();
            const std::size_t rec_index =
                recovered_base[session.tenant->index()] +
                session.ordinal;
            spec.recovered =
                rec_index < recovered.size() && recovered[rec_index];
            specs.push_back(std::move(spec));
        }
        SchedulerRunConfig rc;
        rc.monitor = cfg_.monitor;
        rc.sched = cfg_.scheduler;
        rc.heartbeat_deadline_ms =
            cfg_.watchdog.heartbeat_deadline_ms;
        rc.poll_interval_ms = cfg_.watchdog.poll_interval_ms;
        rc.checkpoint_interval = cfg_.checkpoint_interval;
        auto sched = std::make_unique<FleetScheduler>(
            std::move(rc), std::move(specs), tenants, stop_);
        sched->setStopCheck(stop_check_);
        sched->setFleetStepHook(
            [this](std::size_t session, const std::string &tenant,
                   std::size_t step,
                   const std::atomic<bool> &cancel) {
                if (hook_)
                    hook_(step, cancel);
                if (fleet_hook_)
                    fleet_hook_(session, tenant, step, cancel);
            });
        {
            std::lock_guard<std::mutex> lock(mu_);
            registry_ = &registry;
            shards_.clear();
            fleet_sched_ = std::move(sched);
        }
        std::vector<SessionOutcome> outs = fleet_sched_->run();
        FleetResult fleet;
        fleet.sessions.resize(outs.size());
        for (std::size_t i = 0; i < outs.size(); ++i) {
            ShardResult &out = fleet.sessions[i];
            out.records = std::move(outs[i].records);
            out.reports = std::move(outs[i].reports);
            out.degraded = outs[i].degraded;
            out.steps = outs[i].steps;
            out.escalated = outs[i].escalated;
            out.stopped = outs[i].stopped;
        }
        assembleTenantResults(registry, fleet, nowMs());
        return fleet;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        registry_ = &registry;
        shards_.clear();
        fleet_sched_.reset();
        for (std::size_t i = 0; i < sessions.size(); ++i) {
            const TenantSession &session = sessions[i];
            auto shard = std::make_unique<Shard>();
            shard->index = i;
            shard->source = session.source;
            shard->tenant = session.tenant;
            shard->store =
                tenant_stores_[session.tenant->index()].get();
            shard->store_shard = session.ordinal;
            shard->queue_cfg = cfg_.queue;
            const TenantQuota &quota = session.tenant->spec().quota;
            shard->queue_cfg.capacity =
                std::max<std::size_t>(quota.queue_capacity, 1);
            shard->queue_cfg.max_bytes = quota.queue_max_bytes;
            shards_.push_back(std::move(shard));
        }
    }

    for (auto &sp : shards_) {
        Shard &shard = *sp;
        if (shard.tenant->breaker().tripped()) {
            // Tripped before start (checkpoint rot): the session is
            // born escalated; its result is whatever its last good
            // cut recovered to (a cold mirror when nothing did).
            escalations_.fetch_add(1);
            shard.status.store(kEscalated);
            continue;
        }
        shard.model = shard.tenant->spec().model;
        shard.monitor = std::make_unique<core::Monitor>(
            *shard.model, cfg_.monitor);
        bool restoring = false;
        const std::size_t rec_index =
            recovered_base[shard.tenant->index()] + shard.store_shard;
        if (rec_index < recovered.size() && recovered[rec_index]) {
            const CheckpointData ckpt =
                shard.store->mirror(shard.store_shard);
            if (shard.source->seek(ckpt.source_pos)) {
                shard.monitor->restoreState(ckpt.monitor);
                restoring = true;
            }
        }
        CheckpointData seed;
        seed.monitor = shard.monitor->exportState();
        seed.source_pos = seed.monitor.step_index;
        shard.store->submitFull(shard.store_shard, std::move(seed));
        startShard(shard, restoring);
    }

    while (true) {
        sleepMs(cfg_.watchdog.poll_interval_ms);
        const double now = nowMs();
        if (stop_check_ && stop_check_())
            stop_.store(true);
        bool all_done = true;
        for (auto &sp : shards_) {
            Shard &shard = *sp;
            const int status = shard.status.load();
            if (status == kEof || status == kStopped ||
                status == kEscalated)
                continue;
            all_done = false;
            // Quarantine storm: the stream itself is rotten past the
            // tenant's threshold — restarting cannot help, so the
            // breaker (not the budget) handles it.
            const std::size_t storm =
                shard.tenant->spec().breaker.storm_outage_windows;
            if (storm != 0 && !shard.tenant->breaker().tripped() &&
                shard.longest_outage.load() >= storm) {
                shard.tenant->breaker().record(
                    FaultClass::QuarantineStorm, now);
                escalateTenant(*shard.tenant);
                continue;
            }
            const std::uint64_t seq = shard.progress_seq.load();
            bool hung = false;
            if (seq != shard.wd_seen_seq || !shard.in_step.load()) {
                shard.wd_seen_seq = seq;
                shard.wd_seen_ms = now;
            } else {
                hung = now - shard.wd_seen_ms >
                       cfg_.watchdog.heartbeat_deadline_ms;
            }
            if (status == kCrashed || shard.source_dead.load() || hung)
                handleFailure(shard, now);
        }
        // One group commit per tenant per poll; the watchdog is the
        // only flusher, so stage/commit batches on the shared archive
        // never interleave across tenants.
        for (auto &store : tenant_stores_)
            store->flush();
        if (all_done)
            break;
    }
    for (auto &store : tenant_stores_)
        store->flush();

    FleetResult fleet;
    fleet.sessions.resize(shards_.size());
    for (auto &sp : shards_) {
        Shard &shard = *sp;
        if (shard.feeder.joinable())
            shard.feeder.join();
        if (shard.worker.joinable())
            shard.worker.join();
        {
            std::lock_guard<std::mutex> lock(mu_);
            shard.source_snap = shard.source->stats();
        }
        ShardResult &out = fleet.sessions[shard.index];
        const int status = shard.status.load();
        if (status == kEscalated) {
            const CheckpointData ckpt =
                shard.store->mirror(shard.store_shard);
            out.records = ckpt.monitor.records;
            out.reports = ckpt.monitor.reports;
            out.degraded = ckpt.monitor.degraded;
            out.escalated = true;
        } else {
            out.records = shard.monitor->records();
            out.reports = shard.monitor->reports();
            out.degraded = shard.monitor->degradedStats();
            out.stopped = status == kStopped;
        }
        out.steps = out.records.size();
    }

    assembleTenantResults(registry, fleet, nowMs());
    return fleet;
}

void
Supervisor::assembleTenantResults(TenantRegistry &registry,
                                  FleetResult &fleet, double now_ms)
{
    for (Tenant *tenant : registry.tenants()) {
        TenantResult tr;
        tr.id = tenant->id();
        const CircuitBreaker &breaker = tenant->breaker();
        tr.breaker_tripped = breaker.tripped();
        tr.breaker_cause = breaker.cause();
        tr.worker_faults = breaker.count(FaultClass::WorkerFault);
        tr.quarantine_storms =
            breaker.count(FaultClass::QuarantineStorm);
        tr.checkpoint_decode_failures =
            breaker.count(FaultClass::CheckpointDecode);
        tr.restarts_used = tenant->budget().used(now_ms);
        tr.budget_escalated = tenant->budget().escalated();
        tr.windows_shed = tenant->windowsShed();
        tr.windows_throttled = tenant->windowsThrottled();
        registry.noteRateCounters(tr.windows_shed,
                                  tr.windows_throttled);
        fleet.tenants.push_back(std::move(tr));
    }
    fleet.admission = registry.admissionStats();
}

core::ServeStats
Supervisor::stats() const
{
    core::ServeStats st;
    st.worker_crashes = worker_crashes_.load();
    st.worker_hangs = worker_hangs_.load();
    st.worker_restarts = worker_restarts_.load();
    st.escalations = escalations_.load();
    st.checkpoints_written = checkpoints_written_.load();
    st.checkpoint_restores = checkpoint_restores_.load();
    st.model_reloads = model_reloads_.load();
    st.restart_latency_ms = restart_latency_ms_.load();
    st.queue_wait_ms = queue_wait_ms_.load();
    st.step_ms = step_ms_.load();
    st.checkpoint_ms = checkpoint_ms_.load();
    if (store_) {
        const CheckpointStoreStats cs = store_->stats();
        st.group_commits = cs.group_commits;
        st.full_snapshots = cs.full_snapshots;
        st.delta_bytes = cs.delta_bytes;
        st.delta_fallbacks = cs.delta_fallbacks;
        st.delta_segments_dropped = cs.delta_segments_dropped;
        st.snapshot_decode_failures = cs.snapshot_decode_failures;
    }
    for (const auto &store : tenant_stores_) {
        const CheckpointStoreStats cs = store->stats();
        st.group_commits += cs.group_commits;
        st.full_snapshots += cs.full_snapshots;
        st.delta_bytes += cs.delta_bytes;
        st.delta_fallbacks += cs.delta_fallbacks;
        st.delta_segments_dropped += cs.delta_segments_dropped;
        st.snapshot_decode_failures += cs.snapshot_decode_failures;
    }
    st.breaker_trips = breaker_trips_.load();
    std::lock_guard<std::mutex> lock(mu_);
    if (registry_ != nullptr) {
        st.tenants = registry_->tenants().size();
        st.sessions = registry_->sessions().size();
        const AdmissionStats adm = registry_->admissionStats();
        st.sessions_rejected = adm.rejected_fleet_limit +
            adm.rejected_tenant_limit + adm.rejected_unknown_tenant +
            adm.rejected_breaker_open;
        for (const Tenant *tenant : registry_->tenants()) {
            st.windows_shed += tenant->windowsShed();
            st.windows_throttled += tenant->windowsThrottled();
        }
    }
    for (const auto &sp : shards_) {
        const Shard &shard = *sp;
        QueueStats q = shard.queue_acc;
        if (shard.queue) {
            const QueueStats live = shard.queue->stats();
            q.pushed += live.pushed;
            q.popped += live.popped;
            q.dropped_oldest += live.dropped_oldest;
            q.blocked_pushes += live.blocked_pushes;
            q.spurious_wakeups += live.spurious_wakeups;
            q.max_depth = std::max(q.max_depth, live.max_depth);
        }
        st.delivered += q.pushed;
        st.dropped_oldest += q.dropped_oldest;
        st.blocked_pushes += q.blocked_pushes;
        st.queue_spurious_wakeups += q.spurious_wakeups;
        st.processed += shard.processed.load();
        st.source_stalls += shard.source_snap.stalls;
        st.source_errors += shard.source_snap.errors;
        st.source_retries += shard.source_snap.retries;
        st.source_give_ups += shard.source_snap.give_ups;
    }
    if (fleet_sched_) {
        // Scheduler-path runs count in the scheduler's own atomics;
        // the supervisor's are untouched, so adding is not double
        // counting.
        const core::ServeStats fs = fleet_sched_->serveStats();
        st.worker_crashes += fs.worker_crashes;
        st.worker_hangs += fs.worker_hangs;
        st.worker_restarts += fs.worker_restarts;
        st.escalations += fs.escalations;
        st.checkpoints_written += fs.checkpoints_written;
        st.checkpoint_restores += fs.checkpoint_restores;
        st.breaker_trips += fs.breaker_trips;
        st.restart_latency_ms += fs.restart_latency_ms;
        st.queue_wait_ms += fs.queue_wait_ms;
        st.step_ms += fs.step_ms;
        st.checkpoint_ms += fs.checkpoint_ms;
        st.delivered += fs.delivered;
        st.processed += fs.processed;
        st.dropped_oldest += fs.dropped_oldest;
        st.blocked_pushes += fs.blocked_pushes;
        st.queue_spurious_wakeups += fs.queue_spurious_wakeups;
        st.source_stalls += fs.source_stalls;
        st.source_errors += fs.source_errors;
        st.source_retries += fs.source_retries;
        st.source_give_ups += fs.source_give_ups;
    }
    return st;
}

} // namespace eddie::serve
