/**
 * @file
 * Multi-tenant session layer of the fleet runtime (DESIGN.md §9).
 *
 * A *tenant* is one monitored device class: its own trained model,
 * its own checkpoint key namespace, its own quotas, and — the point
 * of this layer — its own fault domain. A *session* is one STS
 * stream of a tenant. The pieces:
 *
 *  - TenantRegistry: tenant id → model + quota + runtime state, plus
 *    the session table. Session opening goes through admission.
 *  - Admission: fleet-wide and per-tenant session caps and queue-byte
 *    quotas, enforced at open; per-window rate quotas (STS/s token
 *    bucket) enforced by the feeders. Every rejection is a counted
 *    ShedReason, never unbounded growth.
 *  - CircuitBreaker: per-tenant fault accounting. Repeated worker
 *    faults, quality-gate quarantine storms, or checkpoint decode
 *    failures trip the breaker; a tripped tenant's sessions are
 *    escalated into degraded mode while neighbors keep running. The
 *    RestartBudget is per-tenant in fleet mode, so one tenant's
 *    crash loop cannot drain a shared budget.
 *
 * Everything here is pure state over injected timestamps (no threads,
 * no clocks), so policies are unit-testable and the chaos harness can
 * replay schedules deterministically.
 */

#ifndef EDDIE_SERVE_TENANT_H
#define EDDIE_SERVE_TENANT_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/model.h"
#include "sample_source.h"
#include "sts_queue.h"

namespace eddie::serve
{

/**
 * Sliding-window restart budget, factored out of the supervisor so
 * the escalation policy is unit-testable with synthetic clocks: pure
 * state over injected timestamps, no threads. Per-shard in the legacy
 * single-tenant runtime, per-tenant in fleet mode.
 */
class RestartBudget
{
  public:
    RestartBudget(std::size_t budget, double window_ms);

    /**
     * Asks to spend one restart at time @p now_ms. Records it and
     * returns true while fewer than `budget` restarts happened in the
     * trailing window; otherwise flips to escalated (permanently) and
     * returns false.
     */
    bool allow(double now_ms);

    bool escalated() const { return escalated_; }

    /** Restarts still inside the trailing window at @p now_ms. */
    std::size_t used(double now_ms) const;

  private:
    std::size_t budget_;
    double window_ms_;
    mutable std::deque<double> times_;
    bool escalated_ = false;
};

/**
 * Deterministic token bucket over injected timestamps. rate_per_s ==
 * 0 means unlimited (every take succeeds, deficit always 0).
 */
class TokenBucket
{
  public:
    TokenBucket(double rate_per_s, double burst);

    /** Takes @p n tokens at @p now_ms if available. */
    bool tryTake(double now_ms, double n = 1.0);

    /** Milliseconds until @p n tokens will be available at the
     *  configured refill rate (0 when available now). */
    double deficitMs(double now_ms, double n = 1.0) const;

  private:
    void refill(double now_ms) const;

    double rate_per_s_;
    double burst_;
    mutable double tokens_;
    mutable double last_ms_ = 0.0;
};

/** What a session over its STS/s quota does with the excess. */
enum class RatePolicy
{
    /** Feeder sleeps until the bucket refills: nothing is lost, the
     *  tenant slows to its quota, verdicts stay bit-identical. */
    Throttle,
    /** The window is dropped and counted: best-effort posture. */
    Shed,
};

/** Per-tenant resource quotas. 0 = unlimited where noted. */
struct TenantQuota
{
    /** Concurrent sessions this tenant may hold open (0 = no cap). */
    std::size_t max_sessions = 0;
    /** Window capacity of each session's StsQueue. */
    std::size_t queue_capacity = 64;
    /** Byte quota of each session's StsQueue (0 = unbounded). */
    std::size_t queue_max_bytes = 0;
    /** STS windows per second across the tenant's sessions (token
     *  bucket; 0 = unlimited). */
    double sts_per_s = 0.0;
    /** Bucket burst, windows. */
    double burst = 32.0;
    RatePolicy rate_policy = RatePolicy::Throttle;
    /** Per-tenant restart budget (replaces the per-shard budget in
     *  fleet mode: all of a tenant's sessions draw from one pool). */
    std::size_t restart_budget = 3;
    double restart_window_ms = 10000.0;
};

/** Fault classes the per-tenant circuit breaker accounts. */
enum class FaultClass
{
    /** Worker crash, hang, or dead source needing a restart. */
    WorkerFault,
    /** Quality-gate quarantine storm: an outage run at/above the
     *  configured length (the stream itself is rotten, restarts
     *  cannot help). */
    QuarantineStorm,
    /** A tenant checkpoint failed to decode during recovery. */
    CheckpointDecode,
};

/** Breaker tuning. A threshold of 0 disables that trip condition. */
struct BreakerConfig
{
    /** WorkerFaults inside window_ms that trip the breaker. */
    std::size_t fault_threshold = 4;
    double window_ms = 10000.0;
    /** Quarantined-windows run length that counts as a storm. */
    std::size_t storm_outage_windows = 8;
    /** CheckpointDecode events that trip the breaker. */
    std::size_t decode_failure_threshold = 1;
};

/**
 * Per-tenant circuit breaker. Two states:
 *
 *   Closed  --(threshold crossed)-->  Tripped   (latched)
 *
 * Tripped is terminal for the run: the tenant is escalated to
 * degraded mode and its sessions stop consuming restarts. There is no
 * half-open probe state — re-admission is an operator decision (a
 * fresh run), not something the runtime guesses at.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerConfig cfg);

    /**
     * Records one fault of class @p cls at @p now_ms and returns true
     * when this record (or an earlier one) tripped the breaker.
     */
    bool record(FaultClass cls, double now_ms);

    bool tripped() const { return tripped_; }
    /** Class that tripped it (meaningless while Closed). */
    FaultClass cause() const { return cause_; }
    /** Events recorded per class, lifetime. */
    std::uint64_t count(FaultClass cls) const;

  private:
    BreakerConfig cfg_;
    std::deque<double> fault_times_;
    std::uint64_t counts_[3] = {0, 0, 0};
    bool tripped_ = false;
    FaultClass cause_ = FaultClass::WorkerFault;
};

/** Why an open or a window was refused. */
enum class ShedReason
{
    FleetSessionLimit,
    TenantSessionLimit,
    UnknownTenant,
    BreakerOpen,
    RateShed,
};

/** Fleet-wide admission limits. 0 = unlimited. */
struct AdmissionConfig
{
    /** Total concurrent sessions across all tenants. */
    std::size_t max_sessions = 0;
};

/** Admission/shedding counters; every refusal lands here. */
struct AdmissionStats
{
    std::uint64_t sessions_admitted = 0;
    std::uint64_t rejected_fleet_limit = 0;
    std::uint64_t rejected_tenant_limit = 0;
    std::uint64_t rejected_unknown_tenant = 0;
    std::uint64_t rejected_breaker_open = 0;
    /** Windows dropped by RatePolicy::Shed. */
    std::uint64_t windows_shed = 0;
    /** Feeder sleeps taken by RatePolicy::Throttle. */
    std::uint64_t windows_throttled = 0;
};

/** Static description of one tenant. */
struct TenantSpec
{
    std::string id;
    std::shared_ptr<const core::TrainedModel> model;
    TenantQuota quota;
    BreakerConfig breaker;
};

/** Feeder-side verdict on one window against the rate quota. */
enum class RateDecision
{
    Admit,
    /** Sleep wait_ms, then the window is admitted (token charged). */
    Throttle,
    Shed,
};

/**
 * One tenant's runtime state. Created by TenantRegistry::addTenant;
 * address-stable for the registry's lifetime. The token bucket is
 * shared across the tenant's feeder threads (locked internally);
 * budget and breaker are only touched by the supervisor's watchdog
 * thread.
 */
class Tenant
{
  public:
    Tenant(TenantSpec spec, std::size_t index);

    const TenantSpec &spec() const { return spec_; }
    const std::string &id() const { return spec_.id; }
    /** Registration ordinal (stable, used for fate-stream keys). */
    std::size_t index() const { return index_; }

    RestartBudget &budget() { return budget_; }
    CircuitBreaker &breaker() { return breaker_; }

    /**
     * Rate-admits one window at @p now_ms. Thread-safe (feeders of
     * the same tenant race here). Throttle charges nothing yet: the
     * caller sleeps ~wait_ms and calls again.
     */
    RateDecision admitWindow(double now_ms, double &wait_ms);

    std::uint64_t windowsShed() const { return shed_.load(); }
    std::uint64_t windowsThrottled() const { return throttled_.load(); }
    std::size_t openSessions() const { return open_sessions_; }

  private:
    friend class TenantRegistry;

    TenantSpec spec_;
    std::size_t index_;
    RestartBudget budget_;
    CircuitBreaker breaker_;
    std::mutex bucket_mu_;
    TokenBucket bucket_;
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> throttled_{0};
    std::size_t open_sessions_ = 0;
};

/** One admitted session: a tenant plus its STS stream. */
struct TenantSession
{
    Tenant *tenant = nullptr;
    SampleSource *source = nullptr;
    /** Ordinal among the tenant's sessions (checkpoint shard id
     *  within the tenant's namespace). */
    std::size_t ordinal = 0;
};

/**
 * Tenant table + session admission. Not thread-safe: registration
 * and session opening happen before (or between) runs; the supervisor
 * reads it read-only while running.
 */
class TenantRegistry
{
  public:
    explicit TenantRegistry(AdmissionConfig cfg = {});

    /** Registers a tenant; throws std::invalid_argument on a
     *  duplicate or empty id. The reference stays valid for the
     *  registry's lifetime. */
    Tenant &addTenant(TenantSpec spec);

    Tenant *find(const std::string &id);
    const Tenant *find(const std::string &id) const;

    struct OpenResult
    {
        bool admitted = false;
        ShedReason reason = ShedReason::UnknownTenant;
        /** Index into sessions() when admitted. */
        std::size_t session = 0;
    };

    /**
     * Admits one session of @p tenant_id over @p source, enforcing
     * the fleet session cap, the tenant session cap, and the tenant's
     * breaker state. Refusals are counted in admissionStats().
     * @p source must outlive the registry's use.
     */
    OpenResult openSession(const std::string &tenant_id,
                           SampleSource *source);

    const std::vector<TenantSession> &sessions() const
    {
        return sessions_;
    }
    /** Tenants in registration order. */
    const std::vector<Tenant *> &tenants() const { return order_; }

    AdmissionStats admissionStats() const;
    /** Counts a rate-shed/throttle into the registry's totals (the
     *  supervisor folds tenant counters in at run end). */
    void noteRateCounters(std::uint64_t shed, std::uint64_t throttled);

  private:
    AdmissionConfig cfg_;
    std::map<std::string, std::unique_ptr<Tenant>> tenants_;
    std::vector<Tenant *> order_;
    std::vector<TenantSession> sessions_;
    AdmissionStats stats_;
};

/** Human-readable names (logs, chaos reports). */
const char *name(FaultClass cls);
const char *name(ShedReason reason);

} // namespace eddie::serve

#endif // EDDIE_SERVE_TENANT_H
