/**
 * @file
 * Fair-share fleet scheduler (DESIGN.md §10): multiplexes N tenant
 * sessions over a fixed pool of M worker threads, replacing the
 * feeder+worker thread pair per session that capped session count at
 * OS thread limits.
 *
 * Structure:
 *
 *  - A two-level run queue. Level 1 is deficit-round-robin across
 *    tenants: each tenant owns a deficit counter replenished in
 *    proportion to its STS/s quota (equal quanta when no tenant has a
 *    rate quota); a pick reserves one full batch against the counter
 *    up front and the dispatch refunds the steps it did not execute,
 *    so over any backlogged interval tenants receive worker time in
 *    quota proportion. Level 2 is FIFO across the tenant's runnable
 *    sessions. The debt bound is the fairness invariant: a tenant is
 *    only picked with positive deficit and a pick debits at most one
 *    batch, so the counter never goes below -batch_steps even with
 *    every worker serving the same tenant concurrently
 *    (property-tested; the minimum observed is in SchedulerStats).
 *  - Workers pull one runnable session at a time, execute a bounded
 *    batch of monitor steps off its StsQueue (popBatch is the
 *    hand-off), re-enqueue the session if it still has work, and park
 *    on a condvar when the run queue is empty — no spinning, wakeups
 *    are counted.
 *  - Feeders collapse into a small ingestion pool: each feeder owns a
 *    static partition of the sessions (preserving the queues'
 *    single-producer invariant), pulls from sources only into
 *    available queue headroom (StsQueue::headroom + pushBatch, one
 *    wakeup per batch), and enforces the tenant STS/s quota exactly
 *    like the thread-pair feeders (Throttle delays, Shed drops and
 *    counts).
 *  - The watchdog (the thread that called run()) keys hang detection
 *    off per-session progress sequence numbers, not thread liveness:
 *    a session is hung only when a worker has been inside one of its
 *    steps past the deadline with no sequence advance. A session that
 *    steps rarely because 1023 neighbors share its worker is slow,
 *    not hung. Restart/budget/breaker semantics are the thread-pair
 *    path's: failures restore from the tenant store's mirror, charge
 *    the tenant budget, feed the tenant breaker; a breaker trip
 *    removes every session of the tenant from the run queue without
 *    touching neighbors.
 *
 * Verdicts are bit-identical to the thread-pair path: each session's
 * monitor consumes its own stream in order (Block backpressure,
 * Throttle pacing), so scheduling order changes interleaving across
 * sessions, never any session's history. Proven by the chaos harness
 * run on both paths (tools/eddie_chaos --scheduler).
 */

#ifndef EDDIE_SERVE_SCHEDULER_H
#define EDDIE_SERVE_SCHEDULER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint.h"
#include "core/metrics.h"
#include "core/model.h"
#include "core/monitor.h"
#include "sample_source.h"
#include "sts_queue.h"
#include "tenant.h"

namespace eddie::serve
{

/** Scheduler tuning. workers == 0 selects the legacy thread-pair
 *  runtime (one feeder+worker pair per session). */
struct SchedulerConfig
{
    /** Worker threads the fleet multiplexes over (0 = disabled). */
    std::size_t workers = 0;
    /** Ingestion threads; 0 = min(2, workers). */
    std::size_t feeders = 0;
    /** Max monitor steps one dispatch executes before the session
     *  goes back to the run queue (the preemption grain, and the
     *  deficit debt bound). */
    std::size_t batch_steps = 16;
    /** Deficit replenished per round for the largest-weight tenant;
     *  other tenants get a proportional share (min 1 step). */
    double quantum_steps = 32.0;
    /** Windows a feeder pulls per session visit (clamped to queue
     *  headroom so the ingestion pool never blocks on one tenant's
     *  full queue). */
    std::size_t feed_chunk = 16;
    /** Feeder nap when a full round over its partition made no
     *  progress (sources dry / queues full / throttled). */
    double feeder_idle_ms = 0.5;
};

/** Counters of one scheduler run (surfaced next to ServeStats). */
struct SchedulerStats
{
    std::size_t workers = 0;
    std::size_t feeders = 0;
    std::size_t sessions = 0;
    /** Batches dispatched to workers. */
    std::uint64_t dispatches = 0;
    /** Monitor steps executed across all dispatches. */
    std::uint64_t steps = 0;
    /** Dispatches that ended with the session still runnable (went
     *  back to the run queue). */
    std::uint64_t requeues = 0;
    /** Dispatches cut short by the batch_steps bound with windows
     *  still queued — the preemption count. */
    std::uint64_t preemptions = 0;
    /** Times a worker parked on the run-queue condvar. */
    std::uint64_t parks = 0;
    /** Worker wakeups that found nothing runnable. */
    std::uint64_t spurious_wakeups = 0;
    /** Full feeder rounds over a partition with no progress (each is
     *  followed by feeder_idle_ms of sleep). */
    std::uint64_t feeder_naps = 0;
    /** Session visits skipped because the tenant was over its STS/s
     *  quota (Throttle posture). */
    std::uint64_t throttle_skips = 0;
    /** Most negative tenant deficit observed, in steps. The DRR debt
     *  bound promises this never goes below -batch_steps. */
    double min_deficit_steps = 0.0;
    /** Summed worker busy time (dispatch execution, ms) — divide by
     *  workers x wall ms for utilization. */
    double busy_ms = 0.0;
    double wall_ms = 0.0;
};

/** One session handed to the scheduler. */
struct SchedulerSessionSpec
{
    Tenant *tenant = nullptr;
    SampleSource *source = nullptr;
    /** Tenant checkpoint store and this session's shard id in it. */
    CheckpointStore *store = nullptr;
    std::size_t store_shard = 0;
    StsQueueConfig queue;
    /** Tenant breaker already open at start (checkpoint rot): the
     *  session is born escalated, result = its recovered mirror. */
    bool born_escalated = false;
    /** recover() restored this session's mirror: seek + restore
     *  before the first dispatch. */
    bool recovered = false;
};

/** Run-wide knobs the scheduler shares with the supervisor. */
struct SchedulerRunConfig
{
    core::MonitorConfig monitor;
    SchedulerConfig sched;
    /** A session inside one step past this with no progress-sequence
     *  advance is hung. */
    double heartbeat_deadline_ms = 500.0;
    double poll_interval_ms = 2.0;
    /** Monitor steps between delta cuts (0 = mirrors only). */
    std::size_t checkpoint_interval = 64;
};

/** Final verdicts and accounting of one session (field-compatible
 *  with ShardResult; supervisor.h converts). */
struct SessionOutcome
{
    std::vector<core::StepRecord> records;
    std::vector<core::AnomalyReport> reports;
    core::DegradedStats degraded;
    std::size_t steps = 0;
    bool escalated = false;
    bool stopped = false;
};

/**
 * The event-driven fleet runtime. One-shot: construct, set hooks,
 * run(). The caller (Supervisor::runFleet) owns tenants, sources and
 * stores; the scheduler owns queues, monitors and threads.
 */
class FleetScheduler
{
  public:
    using FleetStepHook =
        std::function<void(std::size_t session,
                           const std::string &tenant, std::size_t step,
                           const std::atomic<bool> &cancel)>;
    using StopCheck = std::function<bool()>;

    FleetScheduler(SchedulerRunConfig cfg,
                   std::vector<SchedulerSessionSpec> specs,
                   std::vector<Tenant *> tenants,
                   std::atomic<bool> &stop);
    ~FleetScheduler();

    void setFleetStepHook(FleetStepHook hook)
    {
        hook_ = std::move(hook);
    }
    void setStopCheck(StopCheck check)
    {
        stop_check_ = std::move(check);
    }

    /** Runs every session to completion (EOF, graceful stop, or
     *  escalation). The calling thread becomes the watchdog. Not
     *  reentrant. */
    std::vector<SessionOutcome> run();

    /** Serve-layer counters of this run (crashes, hangs, restarts,
     *  queue/source accounting, stage timings). Thread-safe; valid
     *  during and after run(). */
    core::ServeStats serveStats() const;

    /** Scheduler-specific counters. Thread-safe. */
    SchedulerStats schedulerStats() const;

  private:
    struct Session;
    struct TenantLane;

    void workerLoop(std::size_t worker);
    void feederLoop(std::size_t feeder);
    /** One feeder visit to one session; returns true when any window
     *  moved (or terminal state advanced). */
    bool feedSession(Session &s, std::vector<core::Sts> &scratch);
    /** Executes one bounded batch; returns under no locks. */
    void dispatch(Session &s, std::vector<core::Sts> &batch,
                  double &busy_ms);
    /** Two-level pick; nullptr = nothing runnable. Caller holds mu_. */
    Session *pickLocked();
    /** Makes s runnable (Idle/Restarting -> Ready) and wakes one
     *  worker. Caller holds mu_. */
    void enqueueLocked(Session &s);
    void cutDelta(Session &s);
    void handleFailure(Session &s, double now_ms);
    void escalateTenantLocked(Tenant &tenant);
    void finishSession(Session &s, int terminal_state);
    bool allTerminalLocked() const;

    SchedulerRunConfig cfg_;
    std::vector<Tenant *> tenants_;
    FleetStepHook hook_;
    StopCheck stop_check_;
    std::atomic<bool> &stop_;
    /** Teardown flag for worker/feeder loops (set once run() ends or
     *  all sessions are terminal). */
    std::atomic<bool> done_{false};

    mutable std::mutex mu_; ///< run queue, lanes, session states
    std::condition_variable work_cv_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::vector<TenantLane> lanes_;          ///< index = tenant index
    std::deque<std::size_t> ring_;           ///< active lane indices
    std::vector<std::thread> workers_;
    std::vector<std::thread> feeders_;
    /** Resolved feeder count (the partition stride); set before the
     *  feeder threads launch so they never read feeders_.size() while
     *  the vector is still growing. */
    std::size_t feeder_count_ = 0;

    // Serve-layer counters (names match Supervisor's).
    std::atomic<std::uint64_t> worker_crashes_{0};
    std::atomic<std::uint64_t> worker_hangs_{0};
    std::atomic<std::uint64_t> worker_restarts_{0};
    std::atomic<std::uint64_t> escalations_{0};
    std::atomic<std::uint64_t> checkpoints_written_{0};
    std::atomic<std::uint64_t> checkpoint_restores_{0};
    std::atomic<std::uint64_t> breaker_trips_{0};
    std::atomic<double> restart_latency_ms_{0.0};
    std::atomic<double> queue_wait_ms_{0.0};
    std::atomic<double> step_ms_{0.0};
    std::atomic<double> checkpoint_ms_{0.0};

    // Scheduler counters.
    std::atomic<std::uint64_t> dispatches_{0};
    std::atomic<std::uint64_t> steps_{0};
    std::atomic<std::uint64_t> requeues_{0};
    std::atomic<std::uint64_t> preemptions_{0};
    std::atomic<std::uint64_t> parks_{0};
    std::atomic<std::uint64_t> spurious_wakeups_{0};
    std::atomic<std::uint64_t> feeder_naps_{0};
    std::atomic<std::uint64_t> throttle_skips_{0};
    /** Feeder visits that found a session's queue full (the
     *  scheduler-path face of Block backpressure: the pull is
     *  deferred to a later round instead of parking a thread; folded
     *  into ServeStats::blocked_pushes). */
    std::atomic<std::uint64_t> feed_defers_{0};
    std::atomic<double> busy_ms_{0.0};
    double min_deficit_ = 0.0; ///< guarded by mu_
    double wall_ms_ = 0.0;     ///< written by run() before return
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_SCHEDULER_H
