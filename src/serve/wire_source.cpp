#include "wire_source.h"

#include <chrono>
#include <thread>

namespace eddie::serve
{

namespace
{

/** Reader-side nap while the receive window is full; short enough to
 *  notice an abort promptly, long enough not to spin. */
constexpr double kIngestNapMs = 2.0;

/** Windows next() drains from the receive queue per lock
 *  acquisition. Bounds the extra buffering past recv_capacity to one
 *  batch while amortizing the mutex + wakeup across it. */
constexpr std::size_t kDrainBatch = 32;

} // namespace

WireSource::WireSource(std::string tenant_id,
                       std::uint64_t session_key,
                       const WireSourceConfig &cfg)
    : tenant_id_(std::move(tenant_id)), session_key_(session_key),
      cfg_(cfg),
      recv_(StsQueueConfig{cfg.recv_capacity,
                           BackpressurePolicy::Block,
                           cfg.recv_max_bytes})
{
}

void
WireSource::retain(core::Sts sts)
{
    retained_.push_back(std::move(sts));
    while (retained_.size() > cfg_.replay_window) {
        retained_.pop_front();
        ++retained_base_;
    }
}

Pull
WireSource::next()
{
    Pull out;
    double waited_ms = 0.0;
    for (;;) {
        const std::uint64_t cursor = cursor_.load();
        // Replay from the retained deque first (post-seek rewind).
        if (cursor < retained_base_ + retained_.size()) {
            out.status = PullStatus::Ready;
            out.sts = retained_[std::size_t(cursor - retained_base_)];
            cursor_.store(cursor + 1);
            delivered_.fetch_add(1);
            return out;
        }
        const std::int64_t eof = eof_total_.load();
        if (eof >= 0 && cursor >= std::uint64_t(eof)) {
            out.status = PullStatus::EndOfStream;
            return out;
        }
        // Serve from the staged drain batch, refilling it from the
        // queue (one lock per batch) only once it runs dry.
        if (pending_pos_ < pending_.size()) {
            out.status = PullStatus::Ready;
            out.sts = pending_[pending_pos_];
            retain(std::move(pending_[pending_pos_]));
            ++pending_pos_;
            cursor_.store(cursor + 1);
            delivered_.fetch_add(1);
            return out;
        }
        if (recv_.popBatch(pending_, kDrainBatch,
                           cfg_.poll_slice_ms) > 0) {
            pending_pos_ = 0;
            continue;
        }
        // popBatch times out both on idle and on closed+drained; a
        // drained queue will never deliver, so don't run out the
        // stall budget on it (unless EOF already made it terminal,
        // handled above next iteration).
        if (recv_.drained()) {
            if (eof_total_.load() < 0) {
                stalls_.fetch_add(1);
                out.status = PullStatus::Stalled;
                return out;
            }
            continue; // EOF arrived between the checks; loop decides.
        }
        waited_ms += cfg_.poll_slice_ms;
        if (waited_ms >= cfg_.stall_timeout_ms) {
            stalls_.fetch_add(1);
            out.status = PullStatus::Stalled;
            return out;
        }
    }
}

bool
WireSource::seek(std::uint64_t pos)
{
    const std::uint64_t end = retained_base_ + retained_.size();
    if (pos == cursor_.load())
        return true;
    // Rewind (or fast-forward within delivered history) served from
    // the replay deque. Beyond it the wire cannot help: the peer
    // replays from its ACK, not from arbitrary positions.
    if (pos >= retained_base_ && pos <= end) {
        cursor_.store(pos);
        return true;
    }
    return false;
}

SourceStats
WireSource::stats() const
{
    SourceStats out;
    out.delivered = delivered_.load();
    out.stalls = stalls_.load();
    return out;
}

WireSource::Ingest
WireSource::ingest(std::uint64_t first_seq,
                   std::vector<core::Sts> &&batch,
                   const std::function<bool()> &abort)
{
    if (batch.empty())
        return Ingest::Ok;
    const std::uint64_t expected = expected_.load();
    if (first_seq > expected) {
        gaps_.fetch_add(1);
        return Ingest::Gap;
    }
    const std::uint64_t skip = expected - first_seq;
    if (skip >= batch.size()) {
        duplicates_.fetch_add(batch.size());
        return Ingest::Ok; // pure replay, nothing new
    }
    if (skip > 0) {
        duplicates_.fetch_add(skip);
        batch.erase(batch.begin(),
                    batch.begin() + std::ptrdiff_t(skip));
    }
    while (!batch.empty()) {
        if (recv_.closed())
            return Ingest::Closed;
        // Non-blocking push + bounded backpressure wait instead of
        // the queue's Block wait: a reader superseded by a reconnect
        // must notice @p abort even while the window is full, so the
        // wait is capped at kIngestNapMs — but it parks on the
        // queue's free-space signal, waking the moment the consumer
        // pops (a blind nap here caps ingest at capacity/nap_ms).
        const std::size_t pushed = recv_.pushBatch(batch, false);
        if (pushed > 0) {
            expected_.fetch_add(pushed);
            ingested_.fetch_add(pushed);
            continue;
        }
        if (abort && abort())
            return Ingest::Aborted;
        recv_.waitNotFullFor(kIngestNapMs);
    }
    return Ingest::Ok;
}

WireSource::Ingest
WireSource::noteEof(std::uint64_t total)
{
    if (total != expected_.load()) {
        gaps_.fetch_add(1);
        return Ingest::Gap;
    }
    eof_total_.store(std::int64_t(total));
    recv_.close();
    return Ingest::Ok;
}

WireSourceStats
WireSource::wireStats() const
{
    WireSourceStats out;
    out.ingested = ingested_.load();
    out.duplicates_dropped = duplicates_.load();
    out.gaps_refused = gaps_.load();
    out.recv = recv_.stats();
    return out;
}

} // namespace eddie::serve
