/**
 * @file
 * Crash-consistent checkpoints of running monitors (DESIGN.md §7).
 *
 * Format v1 (magic "EDDIECKP", version 1): one shard's source
 * position plus its complete core::MonitorState, in the shared
 * CRC32+length framing (core/capture_io.h). Still written by
 * saveCheckpoint() and still loadable — resume accepts v1 files.
 *
 * Format v2 adds incremental, group-committed checkpoints:
 *
 *  - A *group snapshot* (same magic, version 2) holds an epoch number
 *    and every shard's full state in one file, written atomically
 *    (tmp + flush + rename).
 *  - A *delta log* (`<path>.dlt`, magic "EDDIEDLT") is an append-only
 *    sequence of individually-framed segments; each segment is one
 *    group commit: the epoch it chains onto plus every shard's
 *    core::MonitorStateDelta since its previous cut. All shards'
 *    deltas land in one buffered write + one flush instead of N
 *    rewrite-the-world file replacements.
 *
 * CheckpointStore owns both files plus an in-memory full-state mirror
 * per shard (what the supervisor restarts crashed workers from).
 * Recovery loads the snapshot, replays matching-epoch delta segments
 * onto it, and — on a truncated, bit-flipped, or chain-broken
 * segment — falls back to the state reconstructed so far, counting
 * the fallback. Resume from any delta chain is bit-identical to
 * resume from a full snapshot at the same cut (property-tested in
 * tests/serve).
 */

#ifndef EDDIE_SERVE_CHECKPOINT_H
#define EDDIE_SERVE_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "store/archive.h"

namespace eddie::serve
{

/** Everything resume needs: where the source was, and the monitor's
 *  full mutable state at that point. */
struct CheckpointData
{
    /** Next item the source will deliver (== windows processed, since
     *  a window is checkpointed only after its step completed). */
    std::uint64_t source_pos = 0;
    core::MonitorState monitor;
};

/** Writes one framed checkpoint (magic "EDDIECKP", version 1). */
void saveCheckpoint(const CheckpointData &ckpt, std::ostream &os);

/** Reads a checkpoint written by saveCheckpoint(). Throws IoError on
 *  truncation, FormatError on corruption. */
CheckpointData loadCheckpoint(std::istream &is);

/**
 * Atomic file write: serializes to @p path + ".tmp", then renames
 * over @p path. On any failure the tmp file is removed and IoError is
 * thrown; the previous checkpoint at @p path is untouched.
 */
void saveCheckpointFile(const CheckpointData &ckpt,
                        const std::string &path);

/** Loads @p path; throws IoError when the file cannot be opened. */
CheckpointData loadCheckpointFile(const std::string &path);

/** All shards' full states at one cut, plus the epoch that names the
 *  delta chain anchored on it. */
struct GroupCheckpoint
{
    std::uint64_t epoch = 0;
    std::vector<CheckpointData> shards;
};

/** Writes one framed group snapshot (magic "EDDIECKP", version 2). */
void saveGroupCheckpoint(const GroupCheckpoint &group, std::ostream &os);

/** Reads a v2 group snapshot — or a v1 single-shard checkpoint,
 *  returned as a one-shard group with epoch 0 (legacy files carry no
 *  delta chain). Throws IoError/FormatError like loadCheckpoint(). */
GroupCheckpoint loadGroupCheckpoint(std::istream &is);

/** Atomic file variants (tmp + flush + rename, like
 *  saveCheckpointFile). */
void saveGroupCheckpointFile(const GroupCheckpoint &group,
                             const std::string &path);
GroupCheckpoint loadGroupCheckpointFile(const std::string &path);

/** One shard's delta within a group commit. */
struct DeltaEntry
{
    std::uint64_t shard = 0;
    core::MonitorStateDelta delta;
};

/** One group commit in the delta log. */
struct DeltaSegment
{
    /** Epoch of the full snapshot this segment chains onto; replay
     *  skips segments from other epochs (a crash between the
     *  snapshot rename and the log truncation leaves stale ones). */
    std::uint64_t epoch = 0;
    std::vector<DeltaEntry> entries;
};

/** Appends one framed segment (magic "EDDIEDLT") as a single
 *  buffered write; the caller flushes to commit. Returns the bytes
 *  written. */
std::size_t appendDeltaSegment(std::ostream &os,
                               const DeltaSegment &seg);

/** Reads the next segment. Returns false on clean end-of-log; throws
 *  IoError on a torn tail, FormatError on corruption. */
bool readDeltaSegment(std::istream &is, DeltaSegment &seg);

/** Per-shard checkpoint path of the legacy (pre-v2) layout: one v1
 *  file per shard, "path.i" when sharded. Recovery still reads it. */
std::string shardCheckpointPath(const std::string &base,
                                std::size_t shard, std::size_t shards);

/** CheckpointStore knobs. */
struct CheckpointStoreConfig
{
    /** Group snapshot file; the delta log lives at path + ".dlt".
     *  Empty = in-memory mirrors only (no persistence). */
    std::string path;
    std::size_t num_shards = 1;
    /** Group commits between full-snapshot rewrites (chain length
     *  bound — recovery replays at most this many segments). */
    std::size_t full_every = 16;
    /**
     * Store snapshots and delta segments as keyed segments of ONE
     * EDDIEARC container at path + ".arc" instead of the
     * snapshot-file + ".dlt" pair. The values are the exact framed
     * bytes of the v2 formats above (key "ckpt/snap" holds a
     * saveGroupCheckpoint() image, "ckpt/dlt/<n>" one
     * appendDeltaSegment() image), so the two layouts round-trip
     * bit-identically. A snapshot rewrite stages the new image plus
     * the removal of every delta key in one atomic group commit —
     * stale-epoch segments structurally cannot survive it. Recovery
     * prefers the archive; when it is absent or empty the legacy
     * files are read (so flipping this flag on migrates in place)
     * and the first flush writes the archive. An unopenable archive
     * path throws IoError from the constructor.
     */
    bool use_archive = false;
    /**
     * Key namespace of this store inside the archive: keys become
     * "<key_prefix>ckpt/snap" and "<key_prefix>ckpt/dlt/<n>". This is
     * the per-tenant fault domain of the fleet runtime — every
     * tenant's store writes its own prefix (e.g. "tenant/<id>/") into
     * one shared container, and a snapshot rewrite removes only the
     * delta keys under its own prefix, so one tenant's checkpoint rot
     * or rewrite can never disturb a neighbor's chain. Empty (the
     * default) is the legacy single-tenant layout, bit-compatible
     * with PR-7 archives. Ignored in file mode.
     */
    std::string key_prefix;
    /**
     * Non-owned shared container to keep this store's keys in,
     * instead of opening a private one at path + ".arc". Implies
     * archive mode; `path` then only names the legacy-migration
     * fallback files. The caller guarantees the archive outlives the
     * store and that flush() across stores sharing one archive is
     * serialized (the supervisor's watchdog is the only flusher).
     */
    store::Archive *shared_archive = nullptr;
};

/** Counters surfaced into core::ServeStats. */
struct CheckpointStoreStats
{
    std::uint64_t group_commits = 0;
    std::uint64_t full_snapshots = 0;
    std::uint64_t delta_bytes = 0;
    std::uint64_t delta_fallbacks = 0;
    std::uint64_t delta_segments_dropped = 0;
    /** Swallowed I/O failures (durability degraded, serving
     *  continues — same policy as the v1 per-shard writer). */
    std::uint64_t write_failures = 0;
    /**
     * A snapshot that *exists* failed to decode during recover() —
     * corruption, not absence (a missing snapshot is a cold start and
     * counts nothing). The fleet runtime's circuit breaker treats
     * this as FaultClass::CheckpointDecode for the owning tenant.
     */
    std::uint64_t snapshot_decode_failures = 0;
};

/**
 * The group-committed checkpoint pipeline. Workers submit deltas (or
 * full states) as they cut them — cheap, in-memory, applied at once
 * to the shard's mirror so a restart always has the newest cut — and
 * the supervisor's watchdog calls flush() once per poll to land
 * everything pending in one buffered append + one flush. Every
 * full_every commits (and whenever a full submit re-anchored a
 * shard's chain) the store atomically rewrites the group snapshot
 * and truncates the log. Thread-safe; all operations share one
 * mutex, held across the (small, buffered) log append.
 */
class CheckpointStore
{
  public:
    explicit CheckpointStore(const CheckpointStoreConfig &cfg);

    /**
     * Best-effort recovery from disk: loads the group snapshot (v2,
     * or a legacy v1 file, or legacy per-shard "path.i" v1 files) and
     * replays matching-epoch delta segments onto it. A torn, corrupt,
     * or chain-broken segment stops the replay at the last good
     * state (fallbacks counted). Returns per-shard recovery flags;
     * recovered states are read back via mirror().
     */
    std::vector<bool> recover();

    /** Replaces @p shard's mirror wholesale, re-anchoring its chain:
     *  the next flush rewrites the full snapshot. */
    void submitFull(std::size_t shard, CheckpointData ckpt);

    /** Queues @p delta for the next group commit. This is the worker
     *  hot path: the critical section is one move into the pending
     *  list — applying to the shard's mirror is deferred to the next
     *  full-snapshot fold (or replayed on a mirror() read), off the
     *  monitoring thread. Deltas for one shard must chain (each
     *  base_step matching the previous cut); a gap surfaces as
     *  FormatError at fold/replay time. */
    void submitDelta(std::size_t shard, core::MonitorStateDelta delta);

    /** The shard's full state at its newest cut: the snapshot-time
     *  mirror plus a replay of the shard's queued deltas. */
    CheckpointData mirror(std::size_t shard);

    /** Group commit: lands all pending deltas in one buffered append
     *  + one flush, rewriting the full snapshot instead when due.
     *  Returns false when an I/O failure was swallowed. */
    bool flush();

    /** Forces the next flush to rewrite the full snapshot (hot model
     *  reload re-anchors every shard's chain). */
    void forceFullSnapshot();

    CheckpointStoreStats stats() const;

  private:
    bool writeFullSnapshotLocked();
    void openDeltaLogLocked(bool truncate);
    /** Archive keys under this store's namespace prefix. */
    std::string snapKeyStr() const;
    std::string deltaPrefixStr() const;
    std::string deltaKeyStr(std::uint64_t n) const;
    void foldAllLocked();
    /** Archive-mode halves of recover() and the snapshot rewrite. */
    bool recoverFromArchiveLocked(std::vector<bool> &recovered);
    bool writeSnapshotArchiveLocked(const GroupCheckpoint &group);
    /** Applies one decoded delta segment transactionally onto the
     *  mirrors; false = damaged (bad shard or broken chain). */
    bool applySegmentLocked(const DeltaSegment &seg);

    CheckpointStoreConfig cfg_;
    mutable std::mutex mu_;
    /** Serializes flush() callers; segment encode + disk IO happen
     *  under this lock alone, so submitDelta (which needs only mu_)
     *  never blocks behind a write in progress. */
    std::mutex io_mu_;
    /** Per-shard state at the last full snapshot — deliberately
     *  lagging: in the steady state cuts ride the delta queues and
     *  the mirrors advance only when a snapshot is rewritten, so the
     *  checkpointed hot path never pays applyDelta. mirror() replays
     *  the queues on top for reads. */
    std::vector<CheckpointData> mirrors_;
    /** Bumped by submitFull; lets an in-flight flush detect that a
     *  shard's queued deltas were superseded mid-write. */
    std::vector<std::uint64_t> mirror_gen_;
    /** Deltas not yet written to the log (next group commit). */
    std::vector<DeltaEntry> pending_;
    /** Deltas written to the log but not yet folded into the
     *  mirrors; consumed by the next full-snapshot fold. */
    std::vector<DeltaEntry> staged_;
    std::uint64_t epoch_ = 0;
    std::size_t commits_since_full_ = 0;
    bool full_dirty_ = true; ///< next flush must rewrite the snapshot
    std::ofstream delta_log_;
    /** Container when cfg_.use_archive (at cfg_.path + ".arc"); the
     *  archive's own lock nests inside io_mu_/mu_ and it never calls
     *  back, so the order is acyclic. */
    std::unique_ptr<store::Archive> archive_;
    /** The archive actually used: archive_.get(), or the non-owned
     *  cfg_.shared_archive; nullptr = file mode. */
    store::Archive *arc_ = nullptr;
    /** Key number of the next delta segment ("ckpt/dlt/<n>"); reset
     *  by each snapshot rewrite (which removes the delta keys). */
    std::uint64_t next_delta_key_ = 0;
    CheckpointStoreStats stats_;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_CHECKPOINT_H
