/**
 * @file
 * Crash-consistent checkpoints of a running monitor (DESIGN.md §7).
 * A checkpoint carries the source position plus the complete
 * core::MonitorState, wrapped in the shared CRC32+length v2 framing
 * (core/capture_io.h), and the file write is atomic: serialize to
 * `path.tmp`, fsync-equivalent flush, then rename over `path`. A
 * crash at any instant therefore leaves either the previous complete
 * checkpoint or the new complete checkpoint — never a torn one — and
 * a flipped bit fails the CRC as a typed FormatError instead of
 * resuming from silently-wrong state.
 *
 * Restoring a checkpoint into a fresh Monitor over the same model and
 * config, and re-seeking the source to source_pos, continues the
 * stream with bit-identical verdicts (regression-tested in
 * tests/serve).
 */

#ifndef EDDIE_SERVE_CHECKPOINT_H
#define EDDIE_SERVE_CHECKPOINT_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/monitor.h"

namespace eddie::serve
{

/** Everything resume needs: where the source was, and the monitor's
 *  full mutable state at that point. */
struct CheckpointData
{
    /** Next item the source will deliver (== windows processed, since
     *  a window is checkpointed only after its step completed). */
    std::uint64_t source_pos = 0;
    core::MonitorState monitor;
};

/** Writes one framed checkpoint (magic "EDDIECKP", version 1). */
void saveCheckpoint(const CheckpointData &ckpt, std::ostream &os);

/** Reads a checkpoint written by saveCheckpoint(). Throws IoError on
 *  truncation, FormatError on corruption. */
CheckpointData loadCheckpoint(std::istream &is);

/**
 * Atomic file write: serializes to @p path + ".tmp", then renames
 * over @p path. On any failure the tmp file is removed and IoError is
 * thrown; the previous checkpoint at @p path is untouched.
 */
void saveCheckpointFile(const CheckpointData &ckpt,
                        const std::string &path);

/** Loads @p path; throws IoError when the file cannot be opened. */
CheckpointData loadCheckpointFile(const std::string &path);

} // namespace eddie::serve

#endif // EDDIE_SERVE_CHECKPOINT_H
