/**
 * @file
 * Connection-oriented ingestion front end for the fleet runtime
 * (DESIGN.md §11): accepts TCP and AF_UNIX ("named pipe") transports,
 * performs the HELLO handshake, and maps each admitted connection to
 * a WireSource registered through TenantRegistry admission — the same
 * counted admission path in-process sessions use, so a NACKed open
 * shows up in AdmissionStats exactly like a refused openSession().
 *
 * Connection state machine (per connection; §11 has the diagram):
 *
 *   accept → [HELLO within hello_deadline_ms]
 *     bad/late HELLO ............ counted handshake failure, close
 *     unknown/over-quota tenant . NACK(reason) + close, counted
 *     new session, admitted ..... ACK(0), stream
 *     known session ............. take over from the previous reader
 *                                 (reconnect), ACK(expected), stream
 *     new session after freeze .. NACK(admission_closed) + close
 *   stream: STS-BATCH (in order; duplicates dropped, gaps NACKed) |
 *           HEARTBEAT | EOF → ACK(total) + close
 *   any malformed frame → NACK(malformed) + close (decoder poisons
 *   the connection; there is no resync — the client reconnects and
 *   replays from its ACK)
 *
 * Liveness: per-connection read deadlines (poll slices) and an idle
 * timeout; a silent peer is closed and counted, its session left
 * resumable. Teardown: drainAndClose() stops accepting, closes every
 * connection and receive window, and joins all threads — called from
 * the SIGINT/SIGTERM path *before* the supervisor writes its final
 * checkpoint, so feeders blocked on the wire unblock first.
 *
 * Threading: one accept thread per transport, one reader thread per
 * live connection. Admission (registry mutation) happens only under
 * the listener mutex and only until freezeAdmission(); the supervisor
 * requires the session table frozen during runFleet, hence the
 * awaitSessions() → freezeAdmission() → runFleet() call order that
 * tools/eddie_serve.cpp uses. Reconnects of known sessions never
 * touch the registry, so they stay legal mid-run.
 */

#ifndef EDDIE_SERVE_WIRE_LISTENER_H
#define EDDIE_SERVE_WIRE_LISTENER_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tenant.h"
#include "wire/decoder.h"
#include "wire/transport.h"
#include "wire_source.h"

namespace eddie::serve
{

struct WireListenerConfig
{
    /** TCP listen address ("host:port", ":0" = loopback ephemeral);
     *  empty disables the TCP transport. */
    std::string tcp;
    /** AF_UNIX socket path; empty disables the pipe transport. */
    std::string unix_path;
    /** Accept-poll slice (bounds drainAndClose latency). */
    double accept_poll_ms = 50.0;
    /** A connection must complete its HELLO within this. */
    double hello_deadline_ms = 5000.0;
    /** Read-poll slice of the per-connection reader. */
    double read_poll_ms = 50.0;
    /** A connection with no traffic (frames or bytes) for this long
     *  is closed (counted; the session stays resumable). */
    double idle_timeout_ms = 30000.0;
    /** recv() chunk size. */
    std::size_t read_chunk = 64 * 1024;
    /** Frame payload cap (decoder buffering bound per connection). */
    std::size_t max_payload = wire::kDefaultMaxPayload;
    /** Receive window / replay tuning of each session's WireSource. */
    WireSourceConfig source;
};

/** Listener counters; every refused, malformed, or dropped peer
 *  lands in exactly one of these. */
struct WireListenerStats
{
    std::uint64_t connections_accepted = 0;
    /** Reader exits (every accepted connection eventually counts). */
    std::uint64_t connections_closed = 0;
    /** No valid HELLO inside hello_deadline_ms. */
    std::uint64_t handshake_failures = 0;
    /** HELLO refused by TenantRegistry admission (NACK + close). */
    std::uint64_t admission_refusals = 0;
    /** New-session HELLO after freezeAdmission() (NACK + close). */
    std::uint64_t late_rejects = 0;
    /** Known-session HELLOs that took over from a dead connection. */
    std::uint64_t reattaches = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t batches = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t eofs = 0;
    /** STS-BATCH/EOF frames refused for opening a sequence gap. */
    std::uint64_t sequence_gaps = 0;
    /** Duplicate windows dropped across all sessions. */
    std::uint64_t duplicates_dropped = 0;
    /** EPIPE/ECONNRESET and friends on reads/writes — counted,
     *  never fatal (satellite: a vanished peer is not a crash). */
    std::uint64_t conn_errors = 0;
    std::uint64_t idle_closes = 0;
    std::uint64_t bytes_received = 0;
    /** Decoder taxonomy summed over all connections: every malformed
     *  input is in exactly one bucket. */
    wire::WireStats wire;
};

class WireListener
{
  public:
    /** @p registry must outlive the listener; admission calls happen
     *  on listener threads until freezeAdmission(). */
    WireListener(TenantRegistry &registry, WireListenerConfig cfg);
    ~WireListener();

    /** Binds the configured transports and starts accepting. Throws
     *  core::IoError when a bind fails. */
    void start();

    /** Resolved TCP address (ephemeral port filled in); empty when
     *  TCP is disabled. */
    std::string tcpAddress() const;
    /** AF_UNIX path; empty when disabled. */
    std::string pipeAddress() const;

    /** Waits until @p n sessions are admitted or @p timeout_ms
     *  passes; returns the admitted count. */
    std::size_t awaitSessions(std::size_t n, double timeout_ms);

    /** Stops admitting NEW sessions (NACK admission_closed);
     *  reconnects of admitted sessions keep working. Call before
     *  Supervisor::runFleet — the registry must not grow mid-run. */
    void freezeAdmission();

    /** Stops accepting, closes every connection and receive window,
     *  joins all listener threads. Idempotent, thread-safe; called
     *  from the signal path before the final checkpoint. */
    void drainAndClose();

    WireListenerStats stats() const;

    /** Admitted sessions' sources, admission order (same order as
     *  their TenantRegistry session slots). */
    std::vector<WireSource *> sources() const;

  private:
    struct SessionSlot
    {
        std::string tenant_id;
        std::uint64_t tenant_hash = 0;
        std::uint64_t session_key = 0;
        std::unique_ptr<WireSource> source;
        /** Generation of the connection allowed to ingest; bumping
         *  it (reconnect takeover, drain) aborts the old reader. */
        std::uint64_t generation = 0;
        bool reader_active = false;
        /** Live connection of the active reader (shutdown target). */
        wire::Conn *active_conn = nullptr;
    };

    /** Per-connection carry-buffer read pump (defined in the .cpp). */
    struct Pump;

    void acceptLoop(wire::Listener *listener);
    void handleConnection(wire::Conn conn);
    /** HELLO → session slot (admission or takeover); nullptr when
     *  the connection was refused and closed. */
    SessionSlot *handshake(wire::Conn &conn, Pump &pump,
                           std::uint64_t &generation);
    void streamLoop(wire::Conn &conn, Pump &pump, SessionSlot &slot,
                    std::uint64_t generation);
    /** One frame's state transition; false ends the connection. */
    bool dispatch(wire::Conn &conn, SessionSlot &slot,
                  std::uint64_t generation, const wire::Decoded &d);
    void sendAck(wire::Conn &conn, const SessionSlot &slot,
                 std::uint64_t sequence);
    void sendNack(wire::Conn &conn, std::uint64_t tenant,
                  std::uint64_t session, std::uint64_t sequence,
                  wire::NackCode code, const std::string &msg);

    TenantRegistry &registry_;
    const WireListenerConfig cfg_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::unique_ptr<SessionSlot>>
        sessions_;
    std::vector<WireSource *> sources_;
    WireListenerStats stats_;
    bool frozen_ = false;
    bool stopping_ = false;
    bool started_ = false;

    wire::Listener tcp_listener_;
    wire::Listener pipe_listener_;
    std::vector<std::thread> accept_threads_;
    std::vector<std::thread> readers_;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_WIRE_LISTENER_H
