/**
 * @file
 * Supervised streaming runtime (DESIGN.md §7). A Supervisor owns one
 * shard per sample source; each shard runs a feeder thread (source →
 * bounded queue) and a monitor worker thread (queue → Monitor::step),
 * while the supervisor's watchdog loop:
 *
 *  - tracks per-session progress sequence numbers and declares a
 *    hang when a step has held in_step past the deadline with no
 *    sequence advance;
 *  - restarts crashed / hung / source-dead shards from their last
 *    checkpoint (re-seeking the source, so no window is skipped and
 *    verdicts stay bit-identical under the Block backpressure
 *    policy), charging a restarts-per-window budget;
 *  - escalates a shard to degraded mode when the budget is exhausted
 *    (its last checkpointed verdicts become its final result);
 *  - hot-reloads the model when the model file's CRC changes,
 *    swapping the shared_ptr atomically and restarting shards from
 *    their live state (no verdict loss, not charged to the budget).
 *
 * Failure injection for tests goes through a cancel-aware StepHook:
 * throwing simulates a worker crash, blocking until the cancel flag
 * simulates a hang the watchdog must detect. Real recovery machinery,
 * simulated faults — the same split as faults/fault_injector.h.
 */

#ifndef EDDIE_SERVE_SUPERVISOR_H
#define EDDIE_SERVE_SUPERVISOR_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint.h"
#include "core/metrics.h"
#include "core/model.h"
#include "core/monitor.h"
#include "sample_source.h"
#include "scheduler.h"
#include "sts_queue.h"
#include "tenant.h"

namespace eddie::serve
{

/** Watchdog and restart policy. */
struct WatchdogConfig
{
    /** A session inside one monitor step for longer than this with no
     *  progress-sequence advance is hung. (Liveness is per-session
     *  progress, not per-thread heartbeat: a session that steps
     *  rarely because it shares a worker is slow, not hung.) */
    double heartbeat_deadline_ms = 500.0;
    /** Restarts allowed per shard within restart_window_ms before
     *  the shard escalates to degraded mode. */
    std::size_t restart_budget = 3;
    double restart_window_ms = 10000.0;
    /** Watchdog poll cadence. */
    double poll_interval_ms = 2.0;
};

/** Everything the runtime needs beyond the model and the sources. */
struct ServeConfig
{
    core::MonitorConfig monitor;
    StsQueueConfig queue;
    WatchdogConfig watchdog;
    /** Monitor steps between delta-checkpoint cuts (0 disables
     *  periodic checkpoints; the in-memory restart mirror is still
     *  kept). */
    std::size_t checkpoint_interval = 64;
    /** Group-snapshot file; the delta log lives at path + ".dlt".
     *  Empty = in-memory mirrors only (see serve/checkpoint.h). */
    std::string checkpoint_path;
    /** Resume from checkpoint_path when the file exists (v2 group
     *  snapshots, legacy v1 files, and legacy per-shard "path.i"
     *  files are all accepted). */
    bool resume = false;
    /** Group commits between full-snapshot rewrites (bounds the
     *  delta chain recovery has to replay). */
    std::size_t full_snapshot_every = 16;
    /** Keep snapshots and delta segments in one EDDIEARC container at
     *  checkpoint_path + ".arc" instead of the file pair; legacy
     *  files are still read when the archive is absent (see
     *  CheckpointStoreConfig::use_archive). */
    bool checkpoint_archive = false;
    /** Windows drained per queue-lock acquisition by each worker. */
    std::size_t queue_batch = 16;
    /** Fleet runtime selection: scheduler.workers > 0 multiplexes all
     *  admitted sessions over that many worker threads behind a
     *  fair-share run queue (serve/scheduler.h); 0 keeps the legacy
     *  feeder+worker thread pair per session. Verdicts are
     *  bit-identical either way. runFleet only; run() ignores it. */
    SchedulerConfig scheduler;
    /** Model file watched for hot reload; empty disables watching. */
    std::string model_path;
    double model_poll_ms = 200.0;
};

/** Final verdicts and accounting of one shard. */
struct ShardResult
{
    std::vector<core::StepRecord> records;
    std::vector<core::AnomalyReport> reports;
    core::DegradedStats degraded;
    /** Monitor steps completed (== records.size()). */
    std::size_t steps = 0;
    /** The restart budget ran out; records/reports are the state at
     *  the last successful checkpoint. */
    bool escalated = false;
    /** Graceful stop (requestStop / stop check) before EOF. */
    bool stopped = false;
};

/** One tenant's outcome of a fleet run. */
struct TenantResult
{
    std::string id;
    /** The tenant's circuit breaker tripped; all its sessions were
     *  isolated into degraded mode (escalated). */
    bool breaker_tripped = false;
    FaultClass breaker_cause = FaultClass::WorkerFault;
    std::uint64_t worker_faults = 0;
    std::uint64_t quarantine_storms = 0;
    std::uint64_t checkpoint_decode_failures = 0;
    /** Restarts charged to the tenant's budget. */
    std::size_t restarts_used = 0;
    bool budget_escalated = false;
    std::uint64_t windows_shed = 0;
    std::uint64_t windows_throttled = 0;
};

/** Everything a fleet run produced. */
struct FleetResult
{
    /** One per admitted session, indexed like
     *  TenantRegistry::sessions(). */
    std::vector<ShardResult> sessions;
    /** One per tenant, registration order. */
    std::vector<TenantResult> tenants;
    AdmissionStats admission;
};

class Supervisor
{
  public:
    /**
     * Test/bench hook invoked before every monitor step with the
     * shard-local step ordinal. Throwing simulates a crash; blocking
     * until @p cancel becomes true simulates a hang (hooks MUST honor
     * cancel, or teardown joins would deadlock).
     */
    using StepHook = std::function<void(std::size_t step,
                                        const std::atomic<bool> &cancel)>;
    /**
     * Fleet-mode hook: like StepHook but also names the session and
     * tenant, so chaos/bench harnesses can target one tenant's
     * sessions while its neighbors run clean.
     */
    using FleetStepHook =
        std::function<void(std::size_t session,
                           const std::string &tenant, std::size_t step,
                           const std::atomic<bool> &cancel)>;
    /** Polled by the watchdog; returning true requests a graceful
     *  stop (signal handlers hook in here). */
    using StopCheck = std::function<bool()>;

    Supervisor(std::shared_ptr<const core::TrainedModel> model,
               ServeConfig cfg);
    /** Fleet-mode constructor: models come from the tenants, so no
     *  process-wide model is held (run() then throws; use
     *  runFleet()). */
    explicit Supervisor(ServeConfig cfg);
    /** Out of line: Shard is incomplete in this header. */
    ~Supervisor();

    /**
     * Runs every source to completion (EOF, graceful stop, or
     * escalation) and returns one result per source. Sources must
     * outlive the call and be seekable for restart/resume to work.
     * Not reentrant.
     */
    std::vector<ShardResult>
    run(const std::vector<SampleSource *> &sources);

    /**
     * Multi-tenant fleet run (DESIGN.md §9): one shard per admitted
     * session in @p registry, each checkpointing into its tenant's
     * own store — a per-tenant key namespace of one shared EDDIEARC
     * container (checkpoint_archive) or a per-tenant file pair at
     * checkpoint_path + "." + id. Per-tenant fault domains:
     *
     *  - the RestartBudget is the tenant's (all its sessions draw
     *    from one pool; exhaustion escalates the failing session);
     *  - every restart-worthy fault also feeds the tenant's circuit
     *    breaker; a trip (repeated worker faults, a quarantine storm
     *    at/above the configured outage length, or a checkpoint
     *    decode failure during resume) escalates ALL the tenant's
     *    sessions at once, and neighbors are untouched;
     *  - feeders enforce the tenant's STS/s quota (Throttle naps
     *    preserve verdict bit-identity; Shed drops are counted).
     *
     * Sessions of healthy tenants finish with verdicts bit-identical
     * to a clean serial run of the same streams (Block policy).
     * ServeConfig's model_path/hot-reload machinery is inert here.
     */
    FleetResult runFleet(TenantRegistry &registry);

    /** Requests a graceful stop: workers finish their current step,
     *  write a final checkpoint, and exit. Thread-safe. */
    void requestStop() { stop_.store(true); }

    void setStopCheck(StopCheck check) { stop_check_ = std::move(check); }
    void setStepHook(StepHook hook) { hook_ = std::move(hook); }
    void setFleetStepHook(FleetStepHook hook)
    {
        fleet_hook_ = std::move(hook);
    }

    /** Aggregated runtime counters (valid during and after run()). */
    core::ServeStats stats() const;

    /** Scheduler-path counters of the current/last runFleet; nullptr
     *  when the run used (or will use) the thread-pair runtime. */
    const FleetScheduler *fleetScheduler() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return fleet_sched_.get();
    }

    /** Currently served model (changes after a hot reload). */
    std::shared_ptr<const core::TrainedModel> model() const;

  private:
    struct Shard;

    void startShard(Shard &shard, bool restoring);
    void stopShardThreads(Shard &shard);
    void feederLoop(Shard &shard);
    void workerLoop(Shard &shard);
    /** Cuts a delta at the worker's current position: applies it to
     *  the shard's store mirror and queues it for the next group
     *  commit. */
    void cutDelta(Shard &shard);
    void handleFailure(Shard &shard, double now_ms);
    void maybeReloadModel(double now_ms);
    /** Trips-side isolation: stops and escalates every session of
     *  @p tenant (their last cuts become their final results). */
    void escalateTenant(Tenant &tenant);
    /** Fleet tail shared by both runtimes: per-tenant results +
     *  admission counters. */
    void assembleTenantResults(TenantRegistry &registry,
                               FleetResult &fleet, double now_ms);

    std::shared_ptr<const core::TrainedModel> model_;
    ServeConfig cfg_;
    StepHook hook_;
    FleetStepHook fleet_hook_;
    StopCheck stop_check_;
    std::atomic<bool> stop_{false};

    mutable std::mutex mu_; ///< guards shards_ and model_
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Group-committed checkpoint pipeline; also the per-shard
     *  restart mirrors (replaces the old per-shard snapshot +
     *  rewrite-the-file-per-cut writer). */
    std::unique_ptr<CheckpointStore> store_;
    /** Fleet mode: one store per tenant (index = Tenant::index()),
     *  all keyed into fleet_archive_ when checkpoint_archive. Only
     *  the watchdog thread flushes, so the shared container never
     *  sees interleaved stage/commit batches. */
    std::vector<std::unique_ptr<CheckpointStore>> tenant_stores_;
    std::unique_ptr<store::Archive> fleet_archive_;
    /** Scheduler-path runtime of the current/last runFleet (kept for
     *  stats()); guarded by mu_. */
    std::unique_ptr<FleetScheduler> fleet_sched_;
    /** Registry of the current/last runFleet (for stats()); guarded
     *  by mu_. */
    TenantRegistry *registry_ = nullptr;

    std::atomic<std::uint64_t> worker_crashes_{0};
    std::atomic<std::uint64_t> worker_hangs_{0};
    std::atomic<std::uint64_t> worker_restarts_{0};
    std::atomic<std::uint64_t> escalations_{0};
    std::atomic<std::uint64_t> checkpoints_written_{0};
    std::atomic<std::uint64_t> checkpoint_restores_{0};
    std::atomic<std::uint64_t> model_reloads_{0};
    std::atomic<std::uint64_t> breaker_trips_{0};
    std::atomic<double> restart_latency_ms_{0.0};
    /** Per-stage worker time (summed across shards): queue wait vs
     *  monitor stepping vs delta cutting — the breakdown that makes
     *  a flat sharding curve attributable. */
    std::atomic<double> queue_wait_ms_{0.0};
    std::atomic<double> step_ms_{0.0};
    std::atomic<double> checkpoint_ms_{0.0};
    std::uint32_t model_crc_ = 0;
    double last_model_poll_ms_ = 0.0;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_SUPERVISOR_H
