/**
 * @file
 * Bounded STS hand-off queue between a feeder (source) thread and a
 * monitor worker, backed by core::RingQueue. The capacity bound is
 * the backpressure point; what happens at the bound is an explicit
 * policy:
 *
 *  - Block: the feeder waits for space. Nothing is lost, the source
 *    slows to the monitor's pace (correct for seekable/replayable
 *    sources, and the only policy compatible with bit-identical
 *    checkpoint recovery).
 *  - DropOldest: the oldest queued window is discarded to admit the
 *    new one. The monitor stays current at the cost of gaps
 *    (live-capture posture; verdicts are then best-effort).
 *
 * Both outcomes are counted in QueueStats, never silent.
 */

#ifndef EDDIE_SERVE_STS_QUEUE_H
#define EDDIE_SERVE_STS_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "core/ring_buffer.h"
#include "core/sts.h"

namespace eddie::serve
{

/** What a full queue does to an incoming push. */
enum class BackpressurePolicy
{
    Block,
    DropOldest,
};

struct StsQueueConfig
{
    std::size_t capacity = 64;
    BackpressurePolicy policy = BackpressurePolicy::Block;
    /**
     * Byte quota over queued windows (stsBytes sum); 0 = unbounded.
     * This is the per-tenant memory fence for the fleet runtime:
     * window *count* alone lets one tenant with huge peak lists eat
     * the process. The bound applies the same policy as capacity —
     * Block waits, DropOldest evicts until the new window fits. A
     * window larger than the whole quota is still admitted when the
     * queue is empty (otherwise Block would deadlock); the quota then
     * holds again from the next push.
     */
    std::size_t max_bytes = 0;
};

/** Accounting size of one queued window: struct + its peak list. */
std::size_t stsBytes(const core::Sts &sts);

/** Counters; every bound hit is visible here. */
struct QueueStats
{
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    /** Windows discarded by DropOldest. */
    std::uint64_t dropped_oldest = 0;
    /** Pushes that had to wait under Block. */
    std::uint64_t blocked_pushes = 0;
    /** High-water mark of queue depth. */
    std::uint64_t max_depth = 0;
    /** Condvar wakeups that found their predicate still false (a
     *  blocked push woken while still over the bound, or a pop woken
     *  to a still-empty ring). Batch wakeups exist to keep this near
     *  zero; the scheduler bench records it. */
    std::uint64_t spurious_wakeups = 0;
    /** Bytes currently queued (stsBytes sum). */
    std::uint64_t queued_bytes = 0;
    /** High-water mark of queued_bytes. */
    std::uint64_t max_queued_bytes = 0;
};

/** Single-producer / single-consumer bounded queue. */
class StsQueue
{
  public:
    explicit StsQueue(const StsQueueConfig &cfg);

    /**
     * Enqueues one window, applying the backpressure policy at the
     * bound. Returns false when the queue was closed (the window is
     * not enqueued).
     */
    bool push(core::Sts sts);

    /**
     * Batched enqueue to match popBatch: one mutex acquisition and
     * ONE consumer wakeup for the whole batch instead of one per
     * window — the producer-side half of the batched hand-off the
     * fleet scheduler's ingestion pool rides. Windows are moved out
     * of @p in front-to-back; the pushed prefix is erased from @p in
     * (leftovers stay, in order, for the caller to retry).
     *
     * With @p may_block (default), applies the full backpressure
     * policy per window — the call pushes everything unless the queue
     * closes mid-batch. With may_block == false, stops at the first
     * window the bound refuses instead of waiting, so a multiplexed
     * feeder can never be parked on one slow tenant's queue.
     * Returns the number of windows enqueued.
     */
    std::size_t pushBatch(std::vector<core::Sts> &in,
                          bool may_block = true);

    /**
     * Free window slots right now (0 once closed). A feeder that
     * clamps its pull chunk to this and uses pushBatch(.., false)
     * never blocks; the byte quota can still refuse earlier, which
     * the non-blocking push surfaces as leftovers.
     */
    std::size_t headroom() const;

    /**
     * Waits up to @p timeout_ms for the queue to leave saturation
     * (ring full, or at the byte quota). The bounded-backpressure
     * companion of pushBatch(.., false): a producer that must stay
     * responsive to an abort flag parks here instead of napping
     * blind, and wakes the moment the consumer frees a slot — on a
     * saturated queue a fixed nap caps throughput at
     * capacity/nap_ms, which the wire bench showed as a 5x cliff.
     * Returns true when a push could now make progress (space freed,
     * or closed — the caller's next push observes the close).
     */
    bool waitNotFullFor(double timeout_ms);

    /**
     * Dequeues the next window, waiting up to @p timeout_ms. Empty
     * optional = timed out, or closed and drained. The timeout keeps
     * the worker's heartbeat fresh while idle (the watchdog must not
     * mistake an empty queue for a hang).
     */
    std::optional<core::Sts> popFor(double timeout_ms);

    /**
     * Batched dequeue: waits up to @p timeout_ms for the first
     * window, then drains up to @p max_items under the same lock
     * acquisition — one mutex round-trip and one producer wakeup per
     * batch instead of per window, the hand-off that keeps sharded
     * workers off each other's cache lines. @p out is cleared first
     * and its capacity reused. Returns the number of windows
     * dequeued (0 = timed out, or closed and drained).
     */
    std::size_t popBatch(std::vector<core::Sts> &out,
                         std::size_t max_items, double timeout_ms);

    /** Wakes all waiters; pushes fail from now on, pops drain what
     *  remains. Idempotent. */
    void close();

    bool closed() const;
    /** Closed and empty: no further window will ever be popped. */
    bool drained() const;
    QueueStats stats() const;

  private:
    StsQueueConfig cfg_;
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    core::RingQueue<core::Sts> ring_;
    QueueStats stats_;
    std::size_t bytes_ = 0;
    bool closed_ = false;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_STS_QUEUE_H
