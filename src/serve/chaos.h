/**
 * @file
 * Deterministic chaos harness for the fleet runtime (DESIGN.md §9.4).
 *
 * runChaos() builds a synthetic multi-tenant fleet (one victim tenant,
 * N-1 healthy neighbors), drives it through a seeded schedule of
 * serve-layer fates, and checks the isolation invariants the tenant
 * layer promises:
 *
 *  - healthy tenants' verdicts are bit-identical to a clean serial
 *    run of the same streams (records AND reports);
 *  - restart counts stay inside the victim's budget and healthy
 *    tenants' breakers never trip;
 *  - recovery from disk is clean after a torn group commit (every
 *    session replays to the full-stream verdicts) and after a corrupt
 *    victim snapshot (the victim is isolated via
 *    FaultClass::CheckpointDecode, neighbors resume untouched).
 *
 * The fate stream is pure state over the seed — stepFate(cfg, session,
 * step, attempt) hashes its arguments through faults::fateMix, the
 * same finalizer behind faults::pullFate — so any failing seed replays
 * exactly, with no recorded schedule to ship around. Attempts are
 * capped like SourceFaultConfig::max_consecutive: a step that killed
 * the worker delivers after max_consecutive replays, so chaos delays
 * progress but cannot livelock a shard inside its restart budget.
 *
 * Fates composed per run (each independently switchable):
 *   worker kill / hang mid-interval  -> FleetStepHook on the victim
 *   queue overflow                   -> tiny victim queue + byte quota
 *   slow-tenant starvation           -> victim STS/s quota
 *                                       (Throttle or Shed by seed)
 *   torn group commit                -> tail truncation + resume
 *   corrupt tenant checkpoint        -> byte flip + resume
 *   hostile wire traffic (phase W)   -> WireClient byte-level chaos
 *                                       against a live WireListener
 */

#ifndef EDDIE_SERVE_CHAOS_H
#define EDDIE_SERVE_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "tenant.h"
#include "wire_client.h"

namespace eddie::serve
{

/** Which fate classes this run composes. All on by default. */
struct ChaosFates
{
    bool worker_kill = true;
    bool worker_hang = true;
    /** Tiny victim queue (capacity 2 + byte quota): exercises Block
     *  backpressure under chaos without breaking bit-identity. */
    bool queue_overflow = true;
    /** Victim STS/s quota; Throttle or Shed chosen by the seed so
     *  both postures appear across a seed grid. */
    bool starvation = true;
    /** Truncate the tail of the checkpoint artifact, then resume. */
    bool torn_commit = true;
    /** Flip a byte in the victim's snapshot, then resume (always
     *  file-mode: the flip must hit the victim, not a neighbor). */
    bool corrupt_checkpoint = true;
};

struct ChaosConfig
{
    std::uint64_t seed = 1;
    /** Tenants in the fleet; index 0 is the victim. Must be >= 2 so
     *  isolation is observable. */
    std::size_t tenants = 3;
    std::size_t sessions_per_tenant = 1;
    /** Windows per session stream. */
    std::size_t stream_len = 160;
    /** Per-step fate probabilities on the victim's sessions. */
    double kill_prob = 0.02;
    double hang_prob = 0.01;
    /** Faulted replays tolerated per (session, step) before the step
     *  is forced to deliver (see file comment). */
    std::uint64_t max_consecutive = 2;
    /** Victim restart budget (shared across its sessions). */
    std::size_t restart_budget = 6;
    double restart_window_ms = 60000.0;
    /** Victim breaker: WorkerFaults in the window that trip it. */
    std::size_t fault_threshold = 4;
    /** Scratch directory for checkpoint artifacts. Empty = in-memory
     *  checkpoints only; the disk fates (torn_commit,
     *  corrupt_checkpoint) are skipped. */
    std::string dir;
    /** EDDIEARC container vs per-tenant file pairs for phases A/B. */
    bool archive = true;
    ChaosFates fates;
    /** Watchdog tuning (short deadlines keep hang fates cheap). */
    double heartbeat_deadline_ms = 40.0;
    double poll_interval_ms = 2.0;
    /** Monitor steps between delta cuts. */
    std::size_t checkpoint_interval = 8;
    std::size_t full_snapshot_every = 4;
    /** Fleet runtime under test: 0 = legacy thread pair per session;
     *  >0 = FleetScheduler with that many worker threads (every fleet
     *  phase runs through it). The invariants checked are identical —
     *  that is the point: one harness proves both runtimes produce
     *  the same verdicts under the same fate stream. */
    std::size_t scheduler_workers = 0;

    /** Phase W: stream every session over the wire (TCP loopback, or
     *  the AF_UNIX transport by seed when dir is set) through a
     *  WireListener/WireClient pair, with the client injecting
     *  byte-level faults per `wire` — torn frames, mid-batch
     *  disconnects, duplicate and skip-ahead replays, corrupted
     *  bytes, hostile length fields. The invariant is the tentpole
     *  claim: verdicts stay bit-identical to the serial run anyway.
     *  Always runs the thread-pair runtime (wire sources block). */
    bool wire_phase = false;
    /** Fault mix of phase W clients (`seed` is ignored — each client
     *  draws its own fate stream from the run seed). */
    WireChaosConfig wire;
};

/** Per-step fate on a victim session. */
enum class StepFate
{
    None,
    Kill,
    Hang,
};

/**
 * The replayable fate stream: fate of the @p attempt-th try at step
 * @p step of session @p session. Pure in its arguments (hashes them
 * through faults::fateMix with cfg.seed), so harness, tests, and a
 * human replaying a failure all see the same schedule. Sessions of
 * healthy tenants always draw None (the caller filters; this function
 * is victim-agnostic).
 */
StepFate stepFate(const ChaosConfig &cfg, std::size_t session,
                  std::size_t step, std::uint64_t attempt);

/** Everything one chaos run observed. ok == violations.empty(). */
struct ChaosReport
{
    bool ok = true;
    /** Human-readable invariant violations (empty on a clean run). */
    std::vector<std::string> violations;

    /** Fate-class exercise counters (a seed-grid soak sums these to
     *  prove every class actually fired). */
    std::uint64_t kills = 0;
    std::uint64_t hangs = 0;
    std::uint64_t blocked_pushes = 0;
    std::uint64_t windows_throttled = 0;
    std::uint64_t windows_shed = 0;
    std::uint64_t torn_bytes = 0;
    std::uint64_t corrupted_snapshots = 0;

    /** Supervision outcomes across the phases. */
    std::uint64_t restarts = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t escalations = 0;
    std::uint64_t snapshot_decode_failures = 0;
    /** The victim ended isolated (breaker or budget) in the faulted
     *  phase; false is fine when the fate draw was gentle. */
    bool victim_isolated = false;
    /** Healthy sessions whose verdicts were checked bit-identical. */
    std::size_t healthy_sessions_checked = 0;

    /** Phase W fate-exercise counters (client-side injection tallies;
     *  a seed grid sums these to prove every wire fate fired). */
    std::uint64_t wire_torn_frames = 0;
    std::uint64_t wire_disconnects = 0;
    std::uint64_t wire_duplicates = 0;
    std::uint64_t wire_reorders = 0;
    std::uint64_t wire_corrupt_frames = 0;
    std::uint64_t wire_hostile_lengths = 0;
    /** Phase W transport/recovery outcomes. */
    std::uint64_t wire_reconnects = 0;
    std::uint64_t wire_nacks = 0;
    std::uint64_t wire_windows_replayed = 0;
    /** Listener-side taxonomy: malformed frames rejected (summed
     *  WireStats buckets) and duplicate windows dropped. */
    std::uint64_t wire_malformed = 0;
    std::uint64_t wire_duplicates_dropped = 0;
    /** Wire sessions whose verdicts were checked bit-identical. */
    std::size_t wire_sessions_checked = 0;
};

/**
 * Runs the full chaos scenario for one seed: a faulted fleet run
 * (phase A), a torn-commit resume (phase B), and a corrupt-snapshot
 * resume (phase C; B and C need cfg.dir). Throws core::Error on
 * configuration errors; invariant violations land in the report, not
 * as exceptions.
 */
ChaosReport runChaos(const ChaosConfig &cfg);

/** One-line summary (tools, CI logs). */
std::string describe(const ChaosReport &report);

} // namespace eddie::serve

#endif // EDDIE_SERVE_CHAOS_H
