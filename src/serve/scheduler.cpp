#include "scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/errors.h"

namespace eddie::serve
{

namespace
{

/** Steady-clock milliseconds (monotonic; only differences matter). */
double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

void
sleepMs(double ms)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::max(ms, 0.0)));
}

/** Session lifecycle states (stored in an atomic<int>). */
enum SessionState : int
{
    kIdle = 0,  ///< queue empty; feeders will re-enqueue on push
    kReady,     ///< in its tenant's fifo, waiting for a worker
    kRunning,   ///< a worker is executing a batch
    kFailed,    ///< relinquished after crash/hang/dead source
    kEof,       ///< source exhausted, queue drained, final cut taken
    kStopped,   ///< graceful stop before EOF
    kEscalated, ///< tenant breaker / budget isolation
};

bool
isTerminal(int st)
{
    return st == kEof || st == kStopped || st == kEscalated;
}

} // namespace

/** One multiplexed session. No thread of its own: feeders visit it by
 *  partition, workers by run-queue pick, the watchdog by scan. */
struct FleetScheduler::Session
{
    std::size_t index = 0;
    SchedulerSessionSpec spec;

    std::shared_ptr<const core::TrainedModel> model;
    std::unique_ptr<core::Monitor> monitor;
    std::unique_ptr<StsQueue> queue;
    /** Queue counters accumulated across restarts (a restart swaps in
     *  a fresh queue). Guarded by FleetScheduler::mu_. */
    QueueStats queue_acc;
    SourceStats source_snap;

    /**
     * Serializes the feed side (pending, source position, queue
     * identity) between the owning feeder and watchdog restarts.
     * Lock order: feed_mu -> mu_ -> queue's internal lock; the
     * watchdog never takes feed_mu while holding mu_.
     */
    std::mutex feed_mu;
    /** Pulled-but-not-yet-admitted holdover (feed side). With the
     *  non-blocking pushBatch this is what keeps one tenant's full
     *  queue from parking the whole ingestion partition. */
    std::vector<core::Sts> pending;
    bool feed_eof = false; ///< guarded by feed_mu

    std::atomic<int> state{kIdle};
    /** Teardown/hang-break flag, honored by step hooks. */
    std::atomic<bool> cancel{false};
    std::atomic<bool> in_step{false};
    std::atomic<bool> crashed{false};
    std::atomic<bool> source_dead{false};
    /** Completed-step counter — the watchdog's progress signal. A
     *  session is hung only when in_step holds with this frozen past
     *  the deadline; merely waiting for worker time never advances
     *  in_step, so multiplexing delay cannot look like a hang. */
    std::atomic<std::uint64_t> progress_seq{0};
    std::atomic<std::uint64_t> processed{0};
    /** Live longest-quarantine-run for the storm check. */
    std::atomic<std::uint64_t> longest_outage{0};

    // Watchdog-only hang-tracking state.
    std::uint64_t wd_seen_seq = 0;
    double wd_seen_ms = 0.0;
    bool hang_signaled = false;

    /** Steps since the last delta cut. Touched only by the worker
     *  currently running the session (Running excludes all others)
     *  or by the watchdog while the session is Failed. */
    std::size_t since_ckpt = 0;
};

/** Level-1 run-queue entry: one tenant's runnable sessions plus its
 *  DRR account. Guarded by mu_. */
struct FleetScheduler::TenantLane
{
    Tenant *tenant = nullptr;
    std::deque<Session *> fifo;
    /** Steps this tenant may still spend before the ring rotates past
     *  it. Replenished by quantum when its turn comes up with a
     *  depleted account; charged with the steps a dispatch actually
     *  executed. Never drops below -batch_steps (the debt bound: a
     *  dispatch starts with deficit > 0 — or >= 0 right after an
     *  empty-fifo reset — and charges at most one batch). */
    double deficit = 0.0;
    double quantum = 1.0;
    bool in_ring = false;
    bool escalated = false;
};

FleetScheduler::FleetScheduler(SchedulerRunConfig cfg,
                               std::vector<SchedulerSessionSpec> specs,
                               std::vector<Tenant *> tenants,
                               std::atomic<bool> &stop)
    : cfg_(std::move(cfg)), tenants_(std::move(tenants)), stop_(stop)
{
    if (cfg_.sched.workers == 0)
        throw core::Error("scheduler: zero workers");
    // DRR weight = the tenant's STS/s quota; unlimited tenants (0)
    // weigh in at the largest configured quota so a quota is never a
    // way to out-schedule an uncapped neighbor. All-unlimited fleets
    // degenerate to equal quanta.
    double max_rate = 0.0;
    for (const Tenant *t : tenants_)
        max_rate = std::max(max_rate, t->spec().quota.sts_per_s);
    if (max_rate <= 0.0)
        max_rate = 1.0;
    lanes_.resize(tenants_.size());
    for (Tenant *t : tenants_) {
        TenantLane &lane = lanes_[t->index()];
        lane.tenant = t;
        const double rate = t->spec().quota.sts_per_s;
        const double w = rate > 0.0 ? rate : max_rate;
        lane.quantum = std::max(
            1.0, cfg_.sched.quantum_steps * w / max_rate);
    }
    sessions_.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto s = std::make_unique<Session>();
        s->index = i;
        s->spec = std::move(specs[i]);
        sessions_.push_back(std::move(s));
    }
}

FleetScheduler::~FleetScheduler()
{
    // run() joins everything; a scheduler destroyed without run()
    // has no threads.
    done_.store(true);
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    for (std::thread &t : feeders_)
        if (t.joinable())
            t.join();
}

void
FleetScheduler::enqueueLocked(Session &s)
{
    TenantLane &lane = lanes_[s.spec.tenant->index()];
    if (lane.escalated)
        return;
    s.state.store(kReady);
    lane.fifo.push_back(&s);
    if (!lane.in_ring) {
        lane.in_ring = true;
        ring_.push_back(s.spec.tenant->index());
    }
    work_cv_.notify_one();
}

FleetScheduler::Session *
FleetScheduler::pickLocked()
{
    // Deficit round robin. Bounded: every full ring rotation adds
    // quantum (>= 1 step) to each visited lane, and deficits start
    // above -batch_steps, so a positive account surfaces within
    // O(batch_steps) rotations.
    while (!ring_.empty()) {
        const std::size_t li = ring_.front();
        TenantLane &lane = lanes_[li];
        if (lane.fifo.empty()) {
            // Nothing runnable: leave the ring and forfeit surplus —
            // credit does not accrue while idle.
            lane.in_ring = false;
            lane.deficit = std::min(lane.deficit, 0.0);
            ring_.pop_front();
            continue;
        }
        if (lane.deficit <= 0.0) {
            lane.deficit += lane.quantum;
            ring_.pop_front();
            ring_.push_back(li);
            continue;
        }
        Session *s = lane.fifo.front();
        lane.fifo.pop_front();
        // Reserve the whole batch up front; dispatch refunds the
        // unexecuted remainder. Charging after the fact instead
        // would let several workers pick the same barely-positive
        // lane concurrently and overdraw it to -workers x batch —
        // reservation is what makes the -batch_steps debt bound hold
        // under concurrency, not just in the single-worker schedule.
        lane.deficit -=
            double(std::max<std::size_t>(cfg_.sched.batch_steps, 1));
        min_deficit_ = std::min(min_deficit_, lane.deficit);
        return s;
    }
    return nullptr;
}

bool
FleetScheduler::allTerminalLocked() const
{
    for (const auto &sp : sessions_)
        if (!isTerminal(sp->state.load()))
            return false;
    return true;
}

void
FleetScheduler::cutDelta(Session &s)
{
    s.spec.store->submitDelta(s.spec.store_shard,
                              s.monitor->exportDelta());
    checkpoints_written_.fetch_add(1);
}

void
FleetScheduler::finishSession(Session &s, int terminal_state)
{
    s.state.store(terminal_state);
    if (s.queue)
        s.queue->close();
}

void
FleetScheduler::escalateTenantLocked(Tenant &tenant)
{
    TenantLane &lane = lanes_[tenant.index()];
    if (lane.escalated)
        return;
    lane.escalated = true;
    breaker_trips_.fetch_add(1);
    lane.fifo.clear();
    for (auto &sp : sessions_) {
        Session &s = *sp;
        if (s.spec.tenant != &tenant || isTerminal(s.state.load()))
            continue;
        if (s.state.load() == kRunning) {
            // The worker converts to Escalated at relinquish (it sees
            // lane.escalated under mu_); cancel breaks a stuck hook.
            s.cancel.store(true);
            continue;
        }
        escalations_.fetch_add(1);
        finishSession(s, kEscalated);
    }
}

void
FleetScheduler::handleFailure(Session &s, double now_ms)
{
    // Classification mirrors the thread-pair path: a caught step
    // exception is a crash, a watchdog-broken stuck step a hang, a
    // delivery path past its retry budget neither (the source's
    // give_ups already count it).
    if (s.crashed.load())
        worker_crashes_.fetch_add(1);
    else if (!s.source_dead.load())
        worker_hangs_.fetch_add(1);

    Tenant &tenant = *s.spec.tenant;
    if (tenant.breaker().record(FaultClass::WorkerFault, now_ms)) {
        std::lock_guard<std::mutex> lock(mu_);
        escalateTenantLocked(tenant);
        return;
    }

    // The store mirror is the session's newest cut (deltas apply to
    // it synchronously on submit, before any disk latency).
    const CheckpointData ckpt =
        s.spec.store->mirror(s.spec.store_shard);
    bool restartable = tenant.budget().allow(now_ms);

    // feed_mu freezes the owning feeder while the source is re-seeked
    // and the holdover + queue are discarded (their windows replay
    // from the re-seeked source, exactly as the thread-pair restart
    // discards the queue).
    std::lock_guard<std::mutex> feed(s.feed_mu);
    if (restartable)
        restartable = s.spec.source->seek(ckpt.source_pos);
    if (!restartable) {
        escalations_.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu_);
        finishSession(s, kEscalated);
        return;
    }
    s.pending.clear();
    s.feed_eof = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (s.queue) {
            const QueueStats q = s.queue->stats();
            s.queue_acc.pushed += q.pushed;
            s.queue_acc.popped += q.popped;
            s.queue_acc.dropped_oldest += q.dropped_oldest;
            s.queue_acc.blocked_pushes += q.blocked_pushes;
            s.queue_acc.spurious_wakeups += q.spurious_wakeups;
            s.queue_acc.max_depth =
                std::max(s.queue_acc.max_depth, q.max_depth);
        }
        s.queue = std::make_unique<StsQueue>(s.spec.queue);
        s.cancel.store(false);
        s.crashed.store(false);
        s.source_dead.store(false);
        s.in_step.store(false);
        s.hang_signaled = false;
        s.wd_seen_seq = s.progress_seq.load();
        s.wd_seen_ms = nowMs();
        s.since_ckpt = 0;
        s.monitor = std::make_unique<core::Monitor>(*s.model,
                                                    cfg_.monitor);
        s.monitor->restoreState(ckpt.monitor);
        // Back to Idle: the feeder refills the fresh queue and
        // re-enqueues on the first push.
        s.state.store(kIdle);
    }
    checkpoint_restores_.fetch_add(1);
    worker_restarts_.fetch_add(1);
    restart_latency_ms_.fetch_add(nowMs() - now_ms);
}

bool
FleetScheduler::feedSession(Session &s, std::vector<core::Sts> &scratch)
{
    (void)scratch;
    if (s.feed_eof && s.pending.empty())
        return false;
    if (s.source_dead.load())
        return false;
    bool progress = false;
    if (!s.pending.empty() &&
        s.queue->pushBatch(s.pending, /*may_block=*/false) > 0)
        progress = true;
    if (s.pending.empty() && !s.feed_eof) {
        Tenant &tenant = *s.spec.tenant;
        std::size_t want = std::min(cfg_.sched.feed_chunk,
                                    s.queue->headroom());
        // Zero headroom on an open queue is where the thread-pair
        // feeder would have parked in push(): count it as the
        // non-blocking equivalent so Block backpressure stays
        // observable on this path.
        if (want == 0 && !s.queue->closed())
            feed_defers_.fetch_add(1);
        while (want > 0) {
            // Rate quota before the pull, exactly like the
            // thread-pair feeder: Throttle delays delivery without
            // reordering or losing windows (verdicts stay
            // bit-identical); Shed consumes the pull and drops it,
            // counted by the tenant.
            double wait_ms = 0.0;
            const RateDecision d =
                tenant.admitWindow(nowMs(), wait_ms);
            if (d == RateDecision::Throttle) {
                // Skip to the next session instead of napping: the
                // feeder is shared, one throttled tenant must not
                // stall its partition.
                throttle_skips_.fetch_add(1);
                break;
            }
            Pull pull = s.spec.source->next();
            if (pull.status == PullStatus::EndOfStream) {
                s.feed_eof = true;
                progress = true;
                break;
            }
            if (pull.status == PullStatus::Stalled ||
                pull.status == PullStatus::TransientError) {
                // Past the retry layer: flag for the watchdog.
                s.source_dead.store(true);
                break;
            }
            --want;
            progress = true;
            if (d == RateDecision::Shed)
                continue; // pulled and dropped (tenant counts it)
            s.pending.push_back(std::move(pull.sts));
        }
        if (!s.pending.empty())
            s.queue->pushBatch(s.pending, /*may_block=*/false);
    }
    if (s.feed_eof && s.pending.empty())
        s.queue->close();

    // Wake the run queue. The emptiness check and the Idle->Ready
    // transition are both under mu_, and the push above happened
    // before this point, so a worker parking the session Idle
    // concurrently cannot lose the wakeup.
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (s.state.load() == kIdle) {
            const std::size_t cap =
                std::max<std::size_t>(s.spec.queue.capacity, 1);
            if (s.queue->headroom() < cap || s.queue->closed())
                enqueueLocked(s);
        }
    }
    return progress;
}

void
FleetScheduler::feederLoop(std::size_t feeder)
{
    const std::size_t stride = feeder_count_;
    std::vector<core::Sts> scratch;
    while (!done_.load() && !stop_.load()) {
        bool progress = false;
        for (std::size_t i = feeder; i < sessions_.size();
             i += stride) {
            if (done_.load() || stop_.load())
                break;
            Session &s = *sessions_[i];
            const int st = s.state.load();
            if (isTerminal(st) || st == kFailed)
                continue;
            // try_lock: the watchdog holds feed_mu across a restart;
            // skip and revisit rather than queueing behind it.
            std::unique_lock<std::mutex> feed(s.feed_mu,
                                              std::try_to_lock);
            if (!feed.owns_lock())
                continue;
            if (feedSession(s, scratch))
                progress = true;
        }
        if (!progress) {
            feeder_naps_.fetch_add(1);
            sleepMs(cfg_.sched.feeder_idle_ms);
        }
    }
}

void
FleetScheduler::dispatch(Session &s, std::vector<core::Sts> &batch,
                         double &busy_ms)
{
    const double t0 = nowMs();
    const std::size_t max_steps =
        std::max<std::size_t>(cfg_.sched.batch_steps, 1);
    dispatches_.fetch_add(1);
    double wait_ms = 0.0, work_ms = 0.0, cut_ms = 0.0;
    std::size_t executed = 0;
    // -1 = batch ran to completion; decide Ready/Idle under mu_.
    int next_state = -1;

    const double t_wait = nowMs();
    const std::size_t n = s.queue->popBatch(batch, max_steps, 0.0);
    wait_ms += nowMs() - t_wait;

    if (n == 0) {
        if (s.queue->drained()) {
            // The final cut rides the watchdog's group commit.
            const double t_cut = nowMs();
            cutDelta(s);
            cut_ms += nowMs() - t_cut;
            next_state = kEof;
        }
        // else: fall through to the under-lock Ready/Idle decision —
        // a feeder may have pushed between the pop and here, and only
        // a check under mu_ can't lose that wakeup.
    } else {
        for (core::Sts &sts : batch) {
            if (s.cancel.load()) {
                next_state = kFailed;
                break;
            }
            if (stop_.load()) {
                const double t_cut = nowMs();
                cutDelta(s);
                cut_ms += nowMs() - t_cut;
                s.queue->close(); // unblocks a feeder mid-push
                next_state = kStopped;
                break;
            }
            s.in_step.store(true);
            const double t_step = nowMs();
            try {
                if (hook_)
                    hook_(s.index, s.spec.tenant->id(),
                          s.monitor->records().size(), s.cancel);
                s.monitor->step(sts);
            } catch (...) {
                s.in_step.store(false);
                s.crashed.store(true);
                next_state = kFailed;
                break;
            }
            work_ms += nowMs() - t_step;
            s.in_step.store(false);
            s.progress_seq.fetch_add(1);
            s.processed.fetch_add(1);
            ++executed;
            s.longest_outage.store(
                s.monitor->degradedStats().longest_outage);
            if (cfg_.checkpoint_interval != 0 &&
                ++s.since_ckpt >= cfg_.checkpoint_interval) {
                s.since_ckpt = 0;
                const double t_cut = nowMs();
                cutDelta(s);
                cut_ms += nowMs() - t_cut;
            }
        }
    }

    steps_.fetch_add(executed);
    queue_wait_ms_.fetch_add(wait_ms);
    step_ms_.fetch_add(work_ms);
    checkpoint_ms_.fetch_add(cut_ms);
    busy_ms += nowMs() - t0;

    // Relinquish: refund the unexecuted part of the pick-time batch
    // reservation and hand the session to its next owner (run queue,
    // feeder, or watchdog).
    std::lock_guard<std::mutex> lock(mu_);
    TenantLane &lane = lanes_[s.spec.tenant->index()];
    lane.deficit += static_cast<double>(max_steps - executed);

    if (lane.escalated) {
        // Tenant was isolated while this batch ran.
        escalations_.fetch_add(1);
        finishSession(s, kEscalated);
        return;
    }
    if (next_state == kEof || next_state == kStopped) {
        finishSession(s, next_state);
        return;
    }
    if (next_state == kFailed) {
        s.state.store(kFailed); // the watchdog takes it from here
        return;
    }
    // Still-queued work (or a closed queue needing its drained /
    // final-cut pass) goes back to the run queue; an empty open
    // queue parks Idle for the feeder. This check runs under mu_ —
    // the feeder's Idle->Ready wake also runs under mu_ after its
    // push, so every interleaving either sees the new windows here
    // or sees our Idle there.
    const std::size_t cap =
        std::max<std::size_t>(s.spec.queue.capacity, 1);
    const bool has_work =
        s.queue->headroom() < cap || s.queue->closed();
    if (!has_work) {
        s.state.store(kIdle);
        return;
    }
    if (executed == max_steps)
        preemptions_.fetch_add(1);
    requeues_.fetch_add(1);
    enqueueLocked(s);
}

void
FleetScheduler::workerLoop(std::size_t worker)
{
    (void)worker;
    std::vector<core::Sts> batch;
    batch.reserve(std::max<std::size_t>(cfg_.sched.batch_steps, 1));
    for (;;) {
        Session *s = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            bool waited = false;
            for (;;) {
                if (done_.load())
                    return;
                s = pickLocked();
                if (s != nullptr)
                    break;
                if (waited)
                    spurious_wakeups_.fetch_add(1);
                parks_.fetch_add(1);
                work_cv_.wait(lock);
                waited = true;
            }
            s->state.store(kRunning);
        }
        double busy_ms = 0.0;
        dispatch(*s, batch, busy_ms);
        busy_ms_.fetch_add(busy_ms);
    }
}

std::vector<SessionOutcome>
FleetScheduler::run()
{
    const double t0 = nowMs();
    const std::size_t n_workers = cfg_.sched.workers;
    const std::size_t n_feeders =
        cfg_.sched.feeders != 0
            ? cfg_.sched.feeders
            : std::min<std::size_t>(2, n_workers);

    // Session setup: monitors, queues, recovery restore, seeded
    // restart mirrors — same sequence as the thread-pair path.
    std::vector<CheckpointStore *> stores;
    for (auto &sp : sessions_) {
        Session &s = *sp;
        if (std::find(stores.begin(), stores.end(), s.spec.store) ==
            stores.end())
            stores.push_back(s.spec.store);
        if (s.spec.born_escalated) {
            // Tripped before start (checkpoint rot): born escalated;
            // the result is whatever its last good cut recovered to.
            escalations_.fetch_add(1);
            s.state.store(kEscalated);
            continue;
        }
        s.model = s.spec.tenant->spec().model;
        s.monitor =
            std::make_unique<core::Monitor>(*s.model, cfg_.monitor);
        s.queue = std::make_unique<StsQueue>(s.spec.queue);
        if (s.spec.recovered) {
            const CheckpointData ckpt =
                s.spec.store->mirror(s.spec.store_shard);
            if (s.spec.source->seek(ckpt.source_pos))
                s.monitor->restoreState(ckpt.monitor);
        }
        // Seed the restart mirror so a failure before the first
        // periodic cut still restores instead of escalating.
        CheckpointData seed;
        seed.monitor = s.monitor->exportState();
        seed.source_pos = seed.monitor.step_index;
        s.spec.store->submitFull(s.spec.store_shard, std::move(seed));
        s.wd_seen_ms = t0;
    }

    done_.store(false);
    feeder_count_ = n_feeders;
    workers_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
    feeders_.reserve(n_feeders);
    for (std::size_t f = 0; f < n_feeders; ++f)
        feeders_.emplace_back([this, f] { feederLoop(f); });

    // The calling thread is the watchdog.
    for (;;) {
        sleepMs(cfg_.poll_interval_ms);
        const double now = nowMs();
        if (stop_check_ && stop_check_())
            stop_.store(true);
        if (stop_.load()) {
            // Finalize parked sessions; running ones stop themselves.
            for (auto &sp : sessions_) {
                Session &s = *sp;
                bool finalize = false;
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    const int st = s.state.load();
                    if (st == kIdle || st == kReady) {
                        TenantLane &lane =
                            lanes_[s.spec.tenant->index()];
                        auto it = std::find(lane.fifo.begin(),
                                            lane.fifo.end(), &s);
                        if (it != lane.fifo.end())
                            lane.fifo.erase(it);
                        s.state.store(kStopped);
                        finalize = true;
                    }
                }
                if (finalize) {
                    cutDelta(s);
                    s.queue->close();
                }
            }
        }
        bool all_done = true;
        for (auto &sp : sessions_) {
            Session &s = *sp;
            const int st = s.state.load();
            if (isTerminal(st))
                continue;
            all_done = false;
            Tenant &tenant = *s.spec.tenant;
            // Quarantine storm: the stream itself is rotten past the
            // tenant's threshold — the breaker, not the budget.
            const std::size_t storm =
                tenant.spec().breaker.storm_outage_windows;
            if (storm != 0 && !tenant.breaker().tripped() &&
                s.longest_outage.load() >= storm) {
                tenant.breaker().record(FaultClass::QuarantineStorm,
                                        now);
                std::lock_guard<std::mutex> lock(mu_);
                escalateTenantLocked(tenant);
                continue;
            }
            if (st == kFailed) {
                handleFailure(s, now);
                continue;
            }
            if (s.source_dead.load() &&
                (st == kIdle || st == kReady)) {
                // No worker owns it; pull it off the run queue and
                // fail it here (a Running session relinquishes Failed
                // on its own once it drains what it has).
                bool failed = false;
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    const int st2 = s.state.load();
                    if (st2 == kIdle || st2 == kReady) {
                        TenantLane &lane =
                            lanes_[tenant.index()];
                        auto it = std::find(lane.fifo.begin(),
                                            lane.fifo.end(), &s);
                        if (it != lane.fifo.end())
                            lane.fifo.erase(it);
                        s.state.store(kFailed);
                        failed = true;
                    }
                }
                if (failed)
                    handleFailure(s, now);
                continue;
            }
            // Progress-sequence hang detection: refresh while the
            // session advances or rests between steps; a step that
            // holds in_step past the deadline with a frozen sequence
            // is hung — break it with cancel and let the worker
            // relinquish as Failed.
            const std::uint64_t seq = s.progress_seq.load();
            if (seq != s.wd_seen_seq || !s.in_step.load()) {
                s.wd_seen_seq = seq;
                s.wd_seen_ms = now;
            } else if (!s.hang_signaled &&
                       now - s.wd_seen_ms >
                           cfg_.heartbeat_deadline_ms) {
                s.hang_signaled = true;
                s.cancel.store(true);
            }
        }
        // One group commit per store per poll; this thread is the
        // only flusher, so shared-archive stage/commit batches never
        // interleave.
        for (CheckpointStore *store : stores)
            store->flush();
        if (all_done)
            break;
    }
    for (CheckpointStore *store : stores)
        store->flush();

    done_.store(true);
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    for (std::thread &t : feeders_)
        t.join();
    workers_.clear();
    feeders_.clear();

    std::vector<SessionOutcome> out(sessions_.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &sp : sessions_) {
            Session &s = *sp;
            s.source_snap = s.spec.source->stats();
            SessionOutcome &o = out[s.index];
            const int st = s.state.load();
            if (st == kEscalated || !s.monitor) {
                const CheckpointData ckpt =
                    s.spec.store->mirror(s.spec.store_shard);
                o.records = ckpt.monitor.records;
                o.reports = ckpt.monitor.reports;
                o.degraded = ckpt.monitor.degraded;
                o.escalated = true;
            } else {
                o.records = s.monitor->records();
                o.reports = s.monitor->reports();
                o.degraded = s.monitor->degradedStats();
                o.stopped = st == kStopped;
            }
            o.steps = o.records.size();
        }
        wall_ms_ = nowMs() - t0;
    }
    return out;
}

core::ServeStats
FleetScheduler::serveStats() const
{
    core::ServeStats st;
    st.worker_crashes = worker_crashes_.load();
    st.worker_hangs = worker_hangs_.load();
    st.worker_restarts = worker_restarts_.load();
    st.escalations = escalations_.load();
    st.checkpoints_written = checkpoints_written_.load();
    st.checkpoint_restores = checkpoint_restores_.load();
    st.breaker_trips = breaker_trips_.load();
    st.restart_latency_ms = restart_latency_ms_.load();
    st.queue_wait_ms = queue_wait_ms_.load();
    st.step_ms = step_ms_.load();
    st.checkpoint_ms = checkpoint_ms_.load();
    st.blocked_pushes = feed_defers_.load();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &sp : sessions_) {
        const Session &s = *sp;
        QueueStats q = s.queue_acc;
        if (s.queue) {
            const QueueStats live = s.queue->stats();
            q.pushed += live.pushed;
            q.popped += live.popped;
            q.dropped_oldest += live.dropped_oldest;
            q.blocked_pushes += live.blocked_pushes;
            q.spurious_wakeups += live.spurious_wakeups;
            q.max_depth = std::max(q.max_depth, live.max_depth);
        }
        st.delivered += q.pushed;
        st.dropped_oldest += q.dropped_oldest;
        st.blocked_pushes += q.blocked_pushes;
        st.queue_spurious_wakeups += q.spurious_wakeups;
        st.processed += s.processed.load();
        st.source_stalls += s.source_snap.stalls;
        st.source_errors += s.source_snap.errors;
        st.source_retries += s.source_snap.retries;
        st.source_give_ups += s.source_snap.give_ups;
    }
    return st;
}

SchedulerStats
FleetScheduler::schedulerStats() const
{
    SchedulerStats st;
    st.workers = cfg_.sched.workers;
    st.feeders = cfg_.sched.feeders != 0
                     ? cfg_.sched.feeders
                     : std::min<std::size_t>(2, cfg_.sched.workers);
    st.dispatches = dispatches_.load();
    st.steps = steps_.load();
    st.requeues = requeues_.load();
    st.preemptions = preemptions_.load();
    st.parks = parks_.load();
    st.spurious_wakeups = spurious_wakeups_.load();
    st.feeder_naps = feeder_naps_.load();
    st.throttle_skips = throttle_skips_.load();
    st.busy_ms = busy_ms_.load();
    std::lock_guard<std::mutex> lock(mu_);
    st.sessions = sessions_.size();
    st.min_deficit_steps = min_deficit_;
    st.wall_ms = wall_ms_;
    return st;
}

} // namespace eddie::serve
