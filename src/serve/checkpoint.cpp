#include "checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/capture_io.h"
#include "core/errors.h"

namespace eddie::serve
{

namespace
{

constexpr char kMagic[8] = {'E', 'D', 'D', 'I', 'E', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
/** Element-count sanity cap; a corrupt length field must fail as
 *  FormatError, not as a giant allocation. */
constexpr std::uint64_t kMaxElements = std::uint64_t(1) << 32;

/** StepRecord flag bits (u8 in the payload). */
constexpr std::uint8_t kTested = 1 << 0;
constexpr std::uint8_t kRejected = 1 << 1;
constexpr std::uint8_t kReported = 1 << 2;
constexpr std::uint8_t kTransitioned = 1 << 3;
constexpr std::uint8_t kDegraded = 1 << 4;

template <typename T>
void
put(std::string &out, T value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof value);
}

/** Bounds-checked payload cursor; running past the end means the
 *  payload lied about its own structure (CRC passed, so this is a
 *  format bug, not line noise). */
class Cursor
{
  public:
    explicit Cursor(const std::string &payload) : payload_(payload) {}

    template <typename T>
    T get()
    {
        T value;
        if (off_ + sizeof value > payload_.size())
            throw core::FormatError("checkpoint: payload underrun");
        std::memcpy(&value, payload_.data() + off_, sizeof value);
        off_ += sizeof value;
        return value;
    }

    std::uint64_t count(const char *what)
    {
        const std::uint64_t n = get<std::uint64_t>();
        if (n > kMaxElements)
            throw core::FormatError(
                std::string("checkpoint: implausible ") + what +
                " count");
        return n;
    }

    bool exhausted() const { return off_ == payload_.size(); }

  private:
    const std::string &payload_;
    std::size_t off_ = 0;
};

std::string
encode(const CheckpointData &ckpt)
{
    const core::MonitorState &m = ckpt.monitor;
    std::string out;
    put<std::uint64_t>(out, ckpt.source_pos);
    put<std::uint64_t>(out, m.current);
    put<std::uint64_t>(out, m.steps_since_change);
    put<std::uint64_t>(out, m.anomaly_count);
    put<std::uint64_t>(out, m.step_index);
    put<std::uint64_t>(out, m.test_calls);
    put<std::uint64_t>(out, m.outage_len);
    put<std::uint8_t>(out, m.resync_pending ? 1 : 0);

    put<std::uint64_t>(out, m.degraded.quarantined);
    put<std::uint64_t>(out, m.degraded.outages);
    put<std::uint64_t>(out, m.degraded.resyncs);
    put<std::uint64_t>(out, m.degraded.longest_outage);
    for (std::size_t kind : m.degraded.by_kind)
        put<std::uint64_t>(out, kind);

    put<std::uint64_t>(out, m.gate_energies.size());
    for (double e : m.gate_energies)
        put<double>(out, e);

    const std::uint64_t width =
        m.history.empty() ? 0 : m.history.front().size();
    put<std::uint64_t>(out, m.history.size());
    put<std::uint64_t>(out, width);
    for (const auto &row : m.history)
        for (std::size_t p = 0; p < width; ++p)
            put<double>(out, p < row.size() ? row[p] : 0.0);

    put<std::uint64_t>(out, m.reports.size());
    for (const auto &r : m.reports) {
        put<std::uint64_t>(out, r.step);
        put<double>(out, r.time);
        put<std::uint64_t>(out, r.region);
    }

    put<std::uint64_t>(out, m.records.size());
    for (const auto &r : m.records) {
        put<std::uint64_t>(out, r.region);
        std::uint8_t flags = 0;
        if (r.tested)
            flags |= kTested;
        if (r.rejected)
            flags |= kRejected;
        if (r.reported)
            flags |= kReported;
        if (r.transitioned)
            flags |= kTransitioned;
        if (r.degraded)
            flags |= kDegraded;
        put<std::uint8_t>(out, flags);
    }
    return out;
}

CheckpointData
decode(const std::string &payload)
{
    Cursor c(payload);
    CheckpointData ckpt;
    core::MonitorState &m = ckpt.monitor;
    ckpt.source_pos = c.get<std::uint64_t>();
    m.current = std::size_t(c.get<std::uint64_t>());
    m.steps_since_change = std::size_t(c.get<std::uint64_t>());
    m.anomaly_count = std::size_t(c.get<std::uint64_t>());
    m.step_index = std::size_t(c.get<std::uint64_t>());
    m.test_calls = std::size_t(c.get<std::uint64_t>());
    m.outage_len = std::size_t(c.get<std::uint64_t>());
    m.resync_pending = c.get<std::uint8_t>() != 0;

    m.degraded.quarantined = std::size_t(c.get<std::uint64_t>());
    m.degraded.outages = std::size_t(c.get<std::uint64_t>());
    m.degraded.resyncs = std::size_t(c.get<std::uint64_t>());
    m.degraded.longest_outage = std::size_t(c.get<std::uint64_t>());
    for (std::size_t &kind : m.degraded.by_kind)
        kind = std::size_t(c.get<std::uint64_t>());

    const std::uint64_t n_energies = c.count("gate energy");
    m.gate_energies.resize(std::size_t(n_energies));
    for (double &e : m.gate_energies)
        e = c.get<double>();

    const std::uint64_t rows = c.count("history row");
    const std::uint64_t width = c.count("history width");
    m.history.resize(std::size_t(rows));
    for (auto &row : m.history) {
        row.resize(std::size_t(width));
        for (double &v : row)
            v = c.get<double>();
    }

    const std::uint64_t n_reports = c.count("report");
    m.reports.resize(std::size_t(n_reports));
    for (auto &r : m.reports) {
        r.step = std::size_t(c.get<std::uint64_t>());
        r.time = c.get<double>();
        r.region = std::size_t(c.get<std::uint64_t>());
    }

    const std::uint64_t n_records = c.count("record");
    m.records.resize(std::size_t(n_records));
    for (auto &r : m.records) {
        r.region = std::size_t(c.get<std::uint64_t>());
        const std::uint8_t flags = c.get<std::uint8_t>();
        r.tested = (flags & kTested) != 0;
        r.rejected = (flags & kRejected) != 0;
        r.reported = (flags & kReported) != 0;
        r.transitioned = (flags & kTransitioned) != 0;
        r.degraded = (flags & kDegraded) != 0;
    }

    if (!c.exhausted())
        throw core::FormatError("checkpoint: trailing payload bytes");
    return ckpt;
}

} // namespace

void
saveCheckpoint(const CheckpointData &ckpt, std::ostream &os)
{
    core::writeFramed(os, kMagic, kVersion, encode(ckpt));
}

CheckpointData
loadCheckpoint(std::istream &is)
{
    std::string payload;
    core::readFramed(is, kMagic, kVersion, 1, "checkpoint", payload);
    return decode(payload);
}

void
saveCheckpointFile(const CheckpointData &ckpt, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            throw core::IoError("checkpoint: cannot open " + tmp);
        }
        try {
            saveCheckpoint(ckpt, os);
        } catch (...) {
            os.close();
            std::remove(tmp.c_str());
            throw;
        }
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            throw core::IoError("checkpoint: short write to " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw core::IoError("checkpoint: cannot rename " + tmp +
                            " to " + path);
    }
}

CheckpointData
loadCheckpointFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw core::IoError("checkpoint: cannot open " + path);
    return loadCheckpoint(is);
}

} // namespace eddie::serve
