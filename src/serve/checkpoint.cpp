#include "checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <span>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "core/capture_io.h"
#include "core/errors.h"
#include "store/span_stream.h"

namespace eddie::serve
{

namespace
{

constexpr char kMagic[8] = {'E', 'D', 'D', 'I', 'E', 'C', 'K', 'P'};
constexpr char kDeltaMagic[8] = {'E', 'D', 'D', 'I',
                                 'E', 'D', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;      ///< single-shard full state
constexpr std::uint32_t kGroupVersion = 2; ///< epoch + all shards
constexpr std::uint32_t kDeltaVersion = 1; ///< delta-log segment
/** Element-count sanity cap; a corrupt length field must fail as
 *  FormatError, not as a giant allocation. */
constexpr std::uint64_t kMaxElements = std::uint64_t(1) << 32;

/** Archive-mode keys: the snapshot image and the numbered delta
 *  segments ("ckpt/dlt/00000000", …; zero-padded so the archive's
 *  lexicographic key order IS replay order). */
constexpr const char *kSnapKey = "ckpt/snap";
constexpr const char *kDeltaPrefix = "ckpt/dlt/";

std::string
deltaKey(std::uint64_t n)
{
    char key[32];
    std::snprintf(key, sizeof key, "%s%08llu", kDeltaPrefix,
                  static_cast<unsigned long long>(n));
    return key;
}

/** StepRecord flag bits (u8 in the payload). */
constexpr std::uint8_t kTested = 1 << 0;
constexpr std::uint8_t kRejected = 1 << 1;
constexpr std::uint8_t kReported = 1 << 2;
constexpr std::uint8_t kTransitioned = 1 << 3;
constexpr std::uint8_t kDegraded = 1 << 4;

template <typename T>
void
put(std::string &out, T value)
{
    out.append(reinterpret_cast<const char *>(&value), sizeof value);
}

/** Bounds-checked payload cursor; running past the end means the
 *  payload lied about its own structure (CRC passed, so this is a
 *  format bug, not line noise). */
class Cursor
{
  public:
    explicit Cursor(const std::string &payload) : payload_(payload) {}

    template <typename T>
    T get()
    {
        T value;
        if (off_ + sizeof value > payload_.size())
            throw core::FormatError("checkpoint: payload underrun");
        std::memcpy(&value, payload_.data() + off_, sizeof value);
        off_ += sizeof value;
        return value;
    }

    std::uint64_t count(const char *what)
    {
        const std::uint64_t n = get<std::uint64_t>();
        if (n > kMaxElements)
            throw core::FormatError(
                std::string("checkpoint: implausible ") + what +
                " count");
        return n;
    }

    bool exhausted() const { return off_ == payload_.size(); }

  private:
    const std::string &payload_;
    std::size_t off_ = 0;
};

void
encodeInto(std::string &out, const CheckpointData &ckpt)
{
    const core::MonitorState &m = ckpt.monitor;
    put<std::uint64_t>(out, ckpt.source_pos);
    put<std::uint64_t>(out, m.current);
    put<std::uint64_t>(out, m.steps_since_change);
    put<std::uint64_t>(out, m.anomaly_count);
    put<std::uint64_t>(out, m.step_index);
    put<std::uint64_t>(out, m.test_calls);
    put<std::uint64_t>(out, m.outage_len);
    put<std::uint8_t>(out, m.resync_pending ? 1 : 0);

    put<std::uint64_t>(out, m.degraded.quarantined);
    put<std::uint64_t>(out, m.degraded.outages);
    put<std::uint64_t>(out, m.degraded.resyncs);
    put<std::uint64_t>(out, m.degraded.longest_outage);
    for (std::size_t kind : m.degraded.by_kind)
        put<std::uint64_t>(out, kind);

    put<std::uint64_t>(out, m.gate_energies.size());
    for (double e : m.gate_energies)
        put<double>(out, e);

    const std::uint64_t width =
        m.history.empty() ? 0 : m.history.front().size();
    put<std::uint64_t>(out, m.history.size());
    put<std::uint64_t>(out, width);
    for (const auto &row : m.history)
        for (std::size_t p = 0; p < width; ++p)
            put<double>(out, p < row.size() ? row[p] : 0.0);

    put<std::uint64_t>(out, m.reports.size());
    for (const auto &r : m.reports) {
        put<std::uint64_t>(out, r.step);
        put<double>(out, r.time);
        put<std::uint64_t>(out, r.region);
    }

    put<std::uint64_t>(out, m.records.size());
    for (const auto &r : m.records) {
        put<std::uint64_t>(out, r.region);
        std::uint8_t flags = 0;
        if (r.tested)
            flags |= kTested;
        if (r.rejected)
            flags |= kRejected;
        if (r.reported)
            flags |= kReported;
        if (r.transitioned)
            flags |= kTransitioned;
        if (r.degraded)
            flags |= kDegraded;
        put<std::uint8_t>(out, flags);
    }
}

CheckpointData
decodeFrom(Cursor &c)
{
    CheckpointData ckpt;
    core::MonitorState &m = ckpt.monitor;
    ckpt.source_pos = c.get<std::uint64_t>();
    m.current = std::size_t(c.get<std::uint64_t>());
    m.steps_since_change = std::size_t(c.get<std::uint64_t>());
    m.anomaly_count = std::size_t(c.get<std::uint64_t>());
    m.step_index = std::size_t(c.get<std::uint64_t>());
    m.test_calls = std::size_t(c.get<std::uint64_t>());
    m.outage_len = std::size_t(c.get<std::uint64_t>());
    m.resync_pending = c.get<std::uint8_t>() != 0;

    m.degraded.quarantined = std::size_t(c.get<std::uint64_t>());
    m.degraded.outages = std::size_t(c.get<std::uint64_t>());
    m.degraded.resyncs = std::size_t(c.get<std::uint64_t>());
    m.degraded.longest_outage = std::size_t(c.get<std::uint64_t>());
    for (std::size_t &kind : m.degraded.by_kind)
        kind = std::size_t(c.get<std::uint64_t>());

    const std::uint64_t n_energies = c.count("gate energy");
    m.gate_energies.resize(std::size_t(n_energies));
    for (double &e : m.gate_energies)
        e = c.get<double>();

    const std::uint64_t rows = c.count("history row");
    const std::uint64_t width = c.count("history width");
    m.history.resize(std::size_t(rows));
    for (auto &row : m.history) {
        row.resize(std::size_t(width));
        for (double &v : row)
            v = c.get<double>();
    }

    const std::uint64_t n_reports = c.count("report");
    m.reports.resize(std::size_t(n_reports));
    for (auto &r : m.reports) {
        r.step = std::size_t(c.get<std::uint64_t>());
        r.time = c.get<double>();
        r.region = std::size_t(c.get<std::uint64_t>());
    }

    const std::uint64_t n_records = c.count("record");
    m.records.resize(std::size_t(n_records));
    for (auto &r : m.records) {
        r.region = std::size_t(c.get<std::uint64_t>());
        const std::uint8_t flags = c.get<std::uint8_t>();
        r.tested = (flags & kTested) != 0;
        r.rejected = (flags & kRejected) != 0;
        r.reported = (flags & kReported) != 0;
        r.transitioned = (flags & kTransitioned) != 0;
        r.degraded = (flags & kDegraded) != 0;
    }
    return ckpt;
}

CheckpointData
decode(const std::string &payload)
{
    Cursor c(payload);
    CheckpointData ckpt = decodeFrom(c);
    if (!c.exhausted())
        throw core::FormatError("checkpoint: trailing payload bytes");
    return ckpt;
}

void
encodeDeltaInto(std::string &out, const core::MonitorStateDelta &d)
{
    put<std::uint64_t>(out, d.base_step);
    put<std::uint64_t>(out, d.step);
    put<std::uint64_t>(out, d.current);
    put<std::uint64_t>(out, d.steps_since_change);
    put<std::uint64_t>(out, d.anomaly_count);
    put<std::uint64_t>(out, d.test_calls);
    put<std::uint64_t>(out, d.outage_len);
    put<std::uint8_t>(out, d.resync_pending ? 1 : 0);

    put<std::uint64_t>(out, d.degraded.quarantined);
    put<std::uint64_t>(out, d.degraded.outages);
    put<std::uint64_t>(out, d.degraded.resyncs);
    put<std::uint64_t>(out, d.degraded.longest_outage);
    for (std::size_t kind : d.degraded.by_kind)
        put<std::uint64_t>(out, kind);

    put<std::uint64_t>(out, d.gate_energies.size());
    for (double e : d.gate_energies)
        put<double>(out, e);

    put<std::uint64_t>(out, d.history_pushes);
    put<std::uint64_t>(out, d.history_count);
    const std::uint64_t width =
        d.history_tail.empty() ? 0 : d.history_tail.front().size();
    put<std::uint64_t>(out, d.history_tail.size());
    put<std::uint64_t>(out, width);
    for (const auto &row : d.history_tail)
        for (std::size_t p = 0; p < width; ++p)
            put<double>(out, p < row.size() ? row[p] : 0.0);

    put<std::uint64_t>(out, d.records_from);
    put<std::uint64_t>(out, d.records.size());
    for (const auto &r : d.records) {
        put<std::uint64_t>(out, r.region);
        std::uint8_t flags = 0;
        if (r.tested)
            flags |= kTested;
        if (r.rejected)
            flags |= kRejected;
        if (r.reported)
            flags |= kReported;
        if (r.transitioned)
            flags |= kTransitioned;
        if (r.degraded)
            flags |= kDegraded;
        put<std::uint8_t>(out, flags);
    }

    put<std::uint64_t>(out, d.reports_from);
    put<std::uint64_t>(out, d.reports.size());
    for (const auto &r : d.reports) {
        put<std::uint64_t>(out, r.step);
        put<double>(out, r.time);
        put<std::uint64_t>(out, r.region);
    }
}

core::MonitorStateDelta
decodeDeltaFrom(Cursor &c)
{
    core::MonitorStateDelta d;
    d.base_step = c.get<std::uint64_t>();
    d.step = c.get<std::uint64_t>();
    d.current = std::size_t(c.get<std::uint64_t>());
    d.steps_since_change = std::size_t(c.get<std::uint64_t>());
    d.anomaly_count = std::size_t(c.get<std::uint64_t>());
    d.test_calls = std::size_t(c.get<std::uint64_t>());
    d.outage_len = std::size_t(c.get<std::uint64_t>());
    d.resync_pending = c.get<std::uint8_t>() != 0;

    d.degraded.quarantined = std::size_t(c.get<std::uint64_t>());
    d.degraded.outages = std::size_t(c.get<std::uint64_t>());
    d.degraded.resyncs = std::size_t(c.get<std::uint64_t>());
    d.degraded.longest_outage = std::size_t(c.get<std::uint64_t>());
    for (std::size_t &kind : d.degraded.by_kind)
        kind = std::size_t(c.get<std::uint64_t>());

    const std::uint64_t n_energies = c.count("gate energy");
    d.gate_energies.resize(std::size_t(n_energies));
    for (double &e : d.gate_energies)
        e = c.get<double>();

    d.history_pushes = c.get<std::uint64_t>();
    d.history_count = c.count("ring row");
    const std::uint64_t rows = c.count("tail row");
    const std::uint64_t width = c.count("tail width");
    d.history_tail.resize(std::size_t(rows));
    for (auto &row : d.history_tail) {
        row.resize(std::size_t(width));
        for (double &v : row)
            v = c.get<double>();
    }

    d.records_from = c.count("record rewrite index");
    const std::uint64_t n_records = c.count("record");
    d.records.resize(std::size_t(n_records));
    for (auto &r : d.records) {
        r.region = std::size_t(c.get<std::uint64_t>());
        const std::uint8_t flags = c.get<std::uint8_t>();
        r.tested = (flags & kTested) != 0;
        r.rejected = (flags & kRejected) != 0;
        r.reported = (flags & kReported) != 0;
        r.transitioned = (flags & kTransitioned) != 0;
        r.degraded = (flags & kDegraded) != 0;
    }

    d.reports_from = c.count("report rewrite index");
    const std::uint64_t n_reports = c.count("report");
    d.reports.resize(std::size_t(n_reports));
    for (auto &r : d.reports) {
        r.step = std::size_t(c.get<std::uint64_t>());
        r.time = c.get<double>();
        r.region = std::size_t(c.get<std::uint64_t>());
    }
    return d;
}

/** Raw little helper for the version-range frame reader below. */
template <typename T>
T
getRaw(std::istream &is, const char *what)
{
    T value;
    is.read(reinterpret_cast<char *>(&value), sizeof value);
    if (!is)
        throw core::IoError(std::string(what) + ": truncated input");
    return value;
}

/**
 * Reads one "EDDIECKP" frame accepting BOTH layout versions (the
 * shared core::readFramed insists on exactly one). Returns the stored
 * version; the caller dispatches v1 (single shard) vs v2 (group).
 */
std::uint32_t
readCheckpointFrame(std::istream &is, std::string &payload)
{
    const char *what = "checkpoint";
    char stored[8];
    is.read(stored, sizeof stored);
    if (!is)
        throw core::IoError(std::string(what) + ": truncated input");
    if (std::memcmp(stored, kMagic, sizeof stored) != 0)
        throw core::FormatError(std::string(what) + ": bad magic");
    const auto version = getRaw<std::uint32_t>(is, what);
    if (version < kVersion || version > kGroupVersion)
        throw core::FormatError(std::string(what) +
                                ": unsupported version");
    const auto size = getRaw<std::uint64_t>(is, what);
    if (size > (std::uint64_t(1) << 40))
        throw core::FormatError(std::string(what) +
                                ": implausible size");
    payload.resize(std::size_t(size));
    is.read(payload.data(), std::streamsize(payload.size()));
    if (!is)
        throw core::IoError(std::string(what) +
                            ": truncated payload (wanted " +
                            std::to_string(size) + " bytes, got " +
                            std::to_string(is.gcount()) + ")");
    const auto stored_crc = getRaw<std::uint32_t>(is, what);
    if (stored_crc != common::crc32(payload))
        throw core::FormatError(std::string(what) +
                                ": checksum mismatch");
    return version;
}

/** Atomic tmp+flush+rename writer shared by the v1 and v2 file
 *  savers. */
void
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &emit)
{
    const std::string tmp = path + ".tmp";
    {
        errno = 0; // stream failures report the underlying errno
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            throw core::ioErrorErrno("checkpoint: open for write",
                                     tmp);
        }
        try {
            emit(os);
        } catch (...) {
            os.close();
            std::remove(tmp.c_str());
            throw;
        }
        os.flush();
        if (!os) {
            auto err = core::ioErrorErrno("checkpoint: write", tmp);
            os.close();
            std::remove(tmp.c_str());
            throw err;
        }
    }
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        auto err = core::ioErrorErrno(
            "checkpoint: rename to " + path, tmp);
        std::remove(tmp.c_str());
        throw err;
    }
}

} // namespace

void
saveCheckpoint(const CheckpointData &ckpt, std::ostream &os)
{
    std::string payload;
    encodeInto(payload, ckpt);
    core::writeFramed(os, kMagic, kVersion, payload);
}

CheckpointData
loadCheckpoint(std::istream &is)
{
    std::string payload;
    core::readFramed(is, kMagic, kVersion, 1, "checkpoint", payload);
    return decode(payload);
}

void
saveCheckpointFile(const CheckpointData &ckpt, const std::string &path)
{
    writeFileAtomic(path,
                    [&](std::ostream &os) { saveCheckpoint(ckpt, os); });
}

CheckpointData
loadCheckpointFile(const std::string &path)
{
    errno = 0;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw core::ioErrorErrno("checkpoint: open", path);
    return loadCheckpoint(is);
}

void
saveGroupCheckpoint(const GroupCheckpoint &group, std::ostream &os)
{
    std::string payload;
    put<std::uint64_t>(payload, group.epoch);
    put<std::uint64_t>(payload, group.shards.size());
    for (const auto &shard : group.shards)
        encodeInto(payload, shard);
    core::writeFramed(os, kMagic, kGroupVersion, payload);
}

GroupCheckpoint
loadGroupCheckpoint(std::istream &is)
{
    std::string payload;
    const std::uint32_t version = readCheckpointFrame(is, payload);
    GroupCheckpoint group;
    if (version == kVersion) {
        // Legacy single-shard file: one chain-less shard, epoch 0.
        group.shards.push_back(decode(payload));
        return group;
    }
    Cursor c(payload);
    group.epoch = c.get<std::uint64_t>();
    const std::uint64_t n = c.count("shard");
    group.shards.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i)
        group.shards.push_back(decodeFrom(c));
    if (!c.exhausted())
        throw core::FormatError("checkpoint: trailing payload bytes");
    return group;
}

void
saveGroupCheckpointFile(const GroupCheckpoint &group,
                        const std::string &path)
{
    writeFileAtomic(path, [&](std::ostream &os) {
        saveGroupCheckpoint(group, os);
    });
}

GroupCheckpoint
loadGroupCheckpointFile(const std::string &path)
{
    errno = 0;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw core::ioErrorErrno("checkpoint: open", path);
    return loadGroupCheckpoint(is);
}

std::size_t
appendDeltaSegment(std::ostream &os, const DeltaSegment &seg)
{
    std::string payload;
    payload.reserve(512 * (seg.entries.size() + 1));
    put<std::uint64_t>(payload, seg.epoch);
    put<std::uint64_t>(payload, seg.entries.size());
    for (const auto &entry : seg.entries) {
        put<std::uint64_t>(payload, entry.shard);
        encodeDeltaInto(payload, entry.delta);
    }
    // Frame into one contiguous buffer so the segment lands in a
    // single stream write — the group-commit contract.
    std::ostringstream framed(std::ios::binary);
    core::writeFramed(framed, kDeltaMagic, kDeltaVersion, payload);
    const std::string bytes = framed.str();
    os.write(bytes.data(), std::streamsize(bytes.size()));
    return bytes.size();
}

bool
readDeltaSegment(std::istream &is, DeltaSegment &seg)
{
    if (is.peek() == std::char_traits<char>::eof())
        return false; // clean end of log
    std::string payload;
    core::readFramed(is, kDeltaMagic, kDeltaVersion, 1, "delta log",
                     payload);
    Cursor c(payload);
    seg.epoch = c.get<std::uint64_t>();
    const std::uint64_t n = c.count("delta entry");
    seg.entries.clear();
    seg.entries.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        DeltaEntry entry;
        entry.shard = c.get<std::uint64_t>();
        entry.delta = decodeDeltaFrom(c);
        seg.entries.push_back(std::move(entry));
    }
    if (!c.exhausted())
        throw core::FormatError("delta log: trailing payload bytes");
    return true;
}

std::string
shardCheckpointPath(const std::string &base, std::size_t shard,
                    std::size_t shards)
{
    if (base.empty() || shards <= 1)
        return base;
    return base + "." + std::to_string(shard);
}

CheckpointStore::CheckpointStore(const CheckpointStoreConfig &cfg)
    : cfg_(cfg), mirrors_(std::max<std::size_t>(cfg.num_shards, 1)),
      mirror_gen_(mirrors_.size(), 0)
{
    if (cfg_.full_every == 0)
        cfg_.full_every = 1;
    if (cfg_.shared_archive != nullptr) {
        arc_ = cfg_.shared_archive;
    } else if (cfg_.use_archive && !cfg_.path.empty()) {
        store::ArchiveConfig arc;
        arc.path = cfg_.path + ".arc";
        archive_ = std::make_unique<store::Archive>(arc);
        arc_ = archive_.get();
    }
}

std::string
CheckpointStore::snapKeyStr() const
{
    return cfg_.key_prefix + kSnapKey;
}

std::string
CheckpointStore::deltaPrefixStr() const
{
    return cfg_.key_prefix + kDeltaPrefix;
}

std::string
CheckpointStore::deltaKeyStr(std::uint64_t n) const
{
    return cfg_.key_prefix + deltaKey(n);
}

bool
CheckpointStore::applySegmentLocked(const DeltaSegment &seg)
{
    // Transactional: decode fully, apply onto copies, then publish —
    // a torn or chain-broken segment leaves every mirror at the
    // previous good cut.
    std::vector<std::pair<std::size_t, CheckpointData>> staged;
    for (const auto &entry : seg.entries) {
        if (entry.shard >= mirrors_.size())
            return false;
        CheckpointData next = mirrors_[std::size_t(entry.shard)];
        for (const auto &prior : staged)
            if (prior.first == std::size_t(entry.shard))
                next = prior.second;
        try {
            core::applyDelta(next.monitor, entry.delta);
        } catch (const core::Error &) {
            return false;
        }
        next.source_pos = next.monitor.step_index;
        staged.emplace_back(std::size_t(entry.shard),
                            std::move(next));
    }
    for (auto &entry : staged)
        mirrors_[entry.first] = std::move(entry.second);
    return true;
}

bool
CheckpointStore::recoverFromArchiveLocked(std::vector<bool> &recovered)
{
    // A missing or damaged snapshot segment falls back to the legacy
    // file layout — that is the in-place migration path: first run
    // with use_archive reads the old files, first flush writes the
    // archive.
    std::span<const char> snap;
    const store::GetStatus got = arc_->get(snapKeyStr(), snap);
    if (got != store::GetStatus::Ok) {
        // Corrupt-but-present is checkpoint rot, not a cold start;
        // the fleet breaker keys off this counter.
        if (got == store::GetStatus::Corrupt)
            ++stats_.snapshot_decode_failures;
        return false;
    }
    GroupCheckpoint group;
    try {
        store::SpanStream is(snap.data(), snap.size());
        group = loadGroupCheckpoint(is);
    } catch (const core::Error &) {
        ++stats_.snapshot_decode_failures;
        return false;
    }
    for (std::size_t i = 0;
         i < group.shards.size() && i < mirrors_.size(); ++i) {
        mirrors_[i] = std::move(group.shards[i]);
        recovered[i] = true;
    }
    epoch_ = group.epoch;

    // Replay the delta segments in key order (zero-padded numbering
    // makes that commit order). Only the chain the snapshot anchors
    // exists — the snapshot rewrite removed older keys in the same
    // atomic commit that landed it — but the epoch check stays as
    // defense in depth.
    const std::string prefix = deltaPrefixStr();
    for (const auto &key : arc_->keys()) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        next_delta_key_ =
            std::strtoull(key.c_str() + prefix.size(), nullptr, 10) +
            1;
        std::span<const char> span;
        if (arc_->get(key, span) != store::GetStatus::Ok) {
            ++stats_.delta_fallbacks;
            ++stats_.delta_segments_dropped;
            break;
        }
        DeltaSegment seg;
        try {
            store::SpanStream is(span.data(), span.size());
            if (!readDeltaSegment(is, seg))
                break;
        } catch (const core::Error &) {
            ++stats_.delta_fallbacks;
            ++stats_.delta_segments_dropped;
            break;
        }
        if (seg.epoch != epoch_) {
            ++stats_.delta_segments_dropped;
            continue;
        }
        if (!applySegmentLocked(seg)) {
            ++stats_.delta_fallbacks;
            ++stats_.delta_segments_dropped;
            break;
        }
    }
    return true;
}

std::vector<bool>
CheckpointStore::recover()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<bool> recovered(mirrors_.size(), false);
    // A shared archive works without a path (keys are the namespace);
    // path-less AND archive-less means in-memory only.
    if (cfg_.path.empty() && arc_ == nullptr)
        return recovered;

    if (arc_ && recoverFromArchiveLocked(recovered))
        return recovered;
    if (cfg_.path.empty())
        return recovered;

    GroupCheckpoint group;
    bool have_group = false;
    try {
        group = loadGroupCheckpointFile(cfg_.path);
        have_group = true;
    } catch (const core::FormatError &) {
        // The file exists but its bytes are rotten: counted so the
        // caller can tell corruption from a cold start.
        ++stats_.snapshot_decode_failures;
    } catch (const core::Error &) {
        // Missing or unreadable snapshot: fall through to the legacy
        // per-shard layout, then to a cold start.
    }

    if (!have_group) {
        if (mirrors_.size() > 1) {
            for (std::size_t i = 0; i < mirrors_.size(); ++i) {
                try {
                    mirrors_[i] = loadCheckpointFile(shardCheckpointPath(
                        cfg_.path, i, mirrors_.size()));
                    recovered[i] = true;
                } catch (const core::Error &) {
                }
            }
        }
        return recovered;
    }

    for (std::size_t i = 0;
         i < group.shards.size() && i < mirrors_.size(); ++i) {
        mirrors_[i] = std::move(group.shards[i]);
        recovered[i] = true;
    }
    epoch_ = group.epoch;

    // Replay matching-epoch delta segments. Each segment commits
    // transactionally: decode fully (CRC-checked by the framing),
    // apply onto copies, then publish — so a torn or chain-broken
    // segment leaves every mirror at the previous good cut.
    std::ifstream dlt(cfg_.path + ".dlt", std::ios::binary);
    if (!dlt)
        return recovered;
    DeltaSegment seg;
    while (true) {
        try {
            if (!readDeltaSegment(dlt, seg))
                break;
        } catch (const core::Error &) {
            ++stats_.delta_fallbacks;
            ++stats_.delta_segments_dropped;
            break;
        }
        if (seg.epoch != epoch_) {
            // Stale segment from before the last snapshot rewrite (a
            // crash between the rename and the truncation).
            ++stats_.delta_segments_dropped;
            continue;
        }
        if (!applySegmentLocked(seg)) {
            ++stats_.delta_fallbacks;
            ++stats_.delta_segments_dropped;
            break;
        }
    }
    return recovered;
}

void
CheckpointStore::submitFull(std::size_t shard, CheckpointData ckpt)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= mirrors_.size())
        return;
    // Queued deltas for this shard no longer chain onto its mirror;
    // the snapshot rewrite the dirty flag forces supersedes them. The
    // generation bump also invalidates any of them currently riding
    // an in-flight flush batch.
    const auto stale = [shard](const DeltaEntry &e) {
        return std::size_t(e.shard) == shard;
    };
    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(), stale),
        pending_.end());
    staged_.erase(
        std::remove_if(staged_.begin(), staged_.end(), stale),
        staged_.end());
    ++mirror_gen_[shard];
    mirrors_[shard] = std::move(ckpt);
    full_dirty_ = true;
}

void
CheckpointStore::submitDelta(std::size_t shard,
                             core::MonitorStateDelta delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= mirrors_.size())
        return;
    // Monitoring hot path: one move into the pending list and out.
    // The mirror fold (applyDelta) runs at flush/mirror time on the
    // watchdog thread, so eight shard workers cutting checkpoints
    // never serialize behind each other's state application.
    DeltaEntry entry;
    entry.shard = shard;
    entry.delta = std::move(delta);
    pending_.push_back(std::move(entry));
}

void
CheckpointStore::foldAllLocked()
{
    // Advances the mirrors to the newest cut by consuming every
    // queued delta (staged_ first: those are older). Only the full
    // snapshot rewrite and the path-less flush need this — in the
    // steady state the mirrors deliberately lag, so the hot path
    // never pays applyDelta at all.
    const auto fold = [this](std::vector<DeltaEntry> &entries) {
        for (auto &entry : entries) {
            CheckpointData &m = mirrors_[std::size_t(entry.shard)];
            core::applyDelta(m.monitor, entry.delta);
            m.source_pos = m.monitor.step_index;
        }
        entries.clear();
    };
    fold(staged_);
    fold(pending_);
}

CheckpointData
CheckpointStore::mirror(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= mirrors_.size())
        return CheckpointData{};
    // Non-consuming read: replay this shard's unfolded deltas onto a
    // copy, leaving the queues intact for the next log write /
    // snapshot fold. Restart-path only, so O(queued) is fine.
    CheckpointData out = mirrors_[shard];
    const auto replay = [&](const std::vector<DeltaEntry> &entries) {
        for (const auto &entry : entries)
            if (std::size_t(entry.shard) == shard) {
                core::applyDelta(out.monitor, entry.delta);
                out.source_pos = out.monitor.step_index;
            }
    };
    replay(staged_);
    replay(pending_);
    return out;
}

void
CheckpointStore::forceFullSnapshot()
{
    std::lock_guard<std::mutex> lock(mu_);
    full_dirty_ = true;
}

void
CheckpointStore::openDeltaLogLocked(bool truncate)
{
    if (delta_log_.is_open() && !truncate)
        return;
    if (delta_log_.is_open())
        delta_log_.close();
    delta_log_.clear();
    delta_log_.open(cfg_.path + ".dlt",
                    std::ios::binary |
                        (truncate ? std::ios::trunc : std::ios::app));
}

bool
CheckpointStore::writeSnapshotArchiveLocked(const GroupCheckpoint &group)
{
    // The new snapshot image and the removal of every delta key land
    // in ONE group commit: either the whole rewrite is visible to a
    // later scan or none of it is, so — unlike the rename-then-
    // truncate file pair — stale-epoch delta segments structurally
    // cannot survive a crash.
    std::ostringstream framed(std::ios::binary);
    saveGroupCheckpoint(group, framed);
    try {
        arc_->stagePut(snapKeyStr(), framed.str());
        // Only THIS store's delta keys: in a shared multi-tenant
        // container, removing another prefix would tear a neighbor's
        // chain out from under its snapshot.
        const std::string prefix = deltaPrefixStr();
        for (const auto &key : arc_->keys())
            if (key.rfind(prefix, 0) == 0)
                arc_->stageRemove(key);
    } catch (const core::Error &) {
        return false;
    }
    return arc_->commit();
}

bool
CheckpointStore::writeFullSnapshotLocked()
{
    // Every queued delta folds into the mirrors (and out of memory)
    // here — on a dead disk this still bounds memory, since the
    // mirrors then carry the cuts the log never got.
    foldAllLocked();
    GroupCheckpoint group;
    group.epoch = epoch_ + 1;
    group.shards = mirrors_;
    if (arc_) {
        if (!writeSnapshotArchiveLocked(group)) {
            ++stats_.write_failures;
            return false;
        }
        next_delta_key_ = 0;
    } else {
        try {
            saveGroupCheckpointFile(group, cfg_.path);
        } catch (const core::IoError &) {
            ++stats_.write_failures;
            return false;
        }
    }
    // The snapshot carries everything the queued deltas said, so the
    // log restarts empty under the new epoch. A crash before the
    // truncation is benign: replay skips the stale-epoch segments.
    epoch_ = group.epoch;
    commits_since_full_ = 0;
    full_dirty_ = false;
    if (!arc_)
        openDeltaLogLocked(true);
    ++stats_.full_snapshots;
    ++stats_.group_commits;
    return true;
}

bool
CheckpointStore::flush()
{
    // io_mu_ serializes writers (the watchdog poll plus per-worker
    // EOF flushes) so segments land in submission order; mu_ is held
    // only long enough to move the queues, so shard workers cutting
    // checkpoints never wait behind serialization or disk.
    std::lock_guard<std::mutex> io_lock(io_mu_);
    DeltaSegment seg;
    std::vector<std::uint64_t> gen_snap;
    std::uint64_t delta_key = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (cfg_.path.empty() && arc_ == nullptr) {
            foldAllLocked(); // mirrors still track every cut in memory
            full_dirty_ = false;
            return true;
        }
        if (full_dirty_ || commits_since_full_ >= cfg_.full_every)
            return writeFullSnapshotLocked();
        if (pending_.empty())
            return true;
        seg.epoch = epoch_;
        seg.entries = std::move(pending_);
        pending_.clear();
        gen_snap = mirror_gen_;
        if (arc_)
            delta_key = next_delta_key_++;
    }

    std::size_t seg_bytes = 0;
    bool wrote = false;
    if (arc_) {
        // Same framed bytes the .dlt log would carry, landed as one
        // keyed segment = one archive group commit. A failed put is
        // rolled back inside the archive (truncate to the pre-commit
        // end), so a torn batch never reaches a later scan; the key
        // number is simply skipped, which replay tolerates.
        std::ostringstream framed(std::ios::binary);
        seg_bytes = appendDeltaSegment(framed, seg);
        wrote = arc_->put(deltaKeyStr(delta_key), framed.str());
    } else {
        // The log stays open across commits (append mode seeks to the
        // end on every write); reopen only after a failure cleared the
        // stream.
        if (!delta_log_.is_open() || !delta_log_)
            openDeltaLogLocked(false);
        seg_bytes = appendDeltaSegment(delta_log_, seg);
        delta_log_.flush();
        wrote = bool(delta_log_);
    }

    std::lock_guard<std::mutex> lock(mu_);
    // Written or not, the entries stay queued for the snapshot fold:
    // on a write failure the mirrors (via the forced snapshot below)
    // are the only copy left, so losing them here would lose cuts.
    // Entries whose shard took a submitFull while the lock was
    // released are superseded — their chain no longer applies.
    for (auto &entry : seg.entries)
        if (mirror_gen_[std::size_t(entry.shard)] ==
            gen_snap[std::size_t(entry.shard)])
            staged_.push_back(std::move(entry));
    if (!wrote) {
        // Degraded durability: the queued cuts survive in memory and
        // the next successful full snapshot re-anchors the chain.
        ++stats_.write_failures;
        full_dirty_ = true;
        return false;
    }
    stats_.delta_bytes += seg_bytes;
    ++stats_.group_commits;
    ++commits_since_full_;
    return true;
}

CheckpointStoreStats
CheckpointStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace eddie::serve
