/**
 * @file
 * Capped exponential backoff with seeded jitter for the serving
 * runtime's source retry path (sample_source.h).
 *
 * The delay for attempt k is min(initial * multiplier^k, max) scaled
 * by a jitter factor drawn deterministically from (seed, k): the
 * schedule is a pure function of the config, so the same seed always
 * produces the same delay sequence (regression-tested), while
 * different shards seeded differently desynchronize their retries —
 * the thundering-herd countermeasure jitter exists for.
 */

#ifndef EDDIE_SERVE_BACKOFF_H
#define EDDIE_SERVE_BACKOFF_H

#include <cstddef>
#include <cstdint>

namespace eddie::serve
{

/** Backoff schedule parameters. */
struct BackoffConfig
{
    /** Delay before the first retry, ms. */
    double initial_ms = 1.0;
    /** Growth factor per attempt (>= 1). */
    double multiplier = 2.0;
    /** Delay ceiling, ms (the "capped" in capped exponential). */
    double max_ms = 100.0;
    /** Jitter half-width: each delay is scaled by a factor uniform in
     *  [1 - jitter, 1 + jitter]. 0 disables jitter. */
    double jitter = 0.25;
    /** Seed of the deterministic jitter stream. */
    std::uint64_t seed = 0xB0FF;
};

/** Throws std::invalid_argument on non-finite or out-of-range
 *  parameters. */
void validate(const BackoffConfig &cfg);

/**
 * One retry schedule. nextDelayMs() advances through the attempts;
 * reset() rewinds to attempt 0 *and* replays the same jitter stream,
 * so a schedule is fully reproducible from its config alone.
 */
class Backoff
{
  public:
    explicit Backoff(const BackoffConfig &cfg);

    /** Delay before the next retry, ms; advances the attempt count. */
    double nextDelayMs();

    /** Rewinds to attempt 0; the schedule replays identically. */
    void reset() { attempt_ = 0; }

    /** Attempts consumed since construction or the last reset(). */
    std::size_t attempts() const { return attempt_; }

  private:
    BackoffConfig cfg_;
    std::size_t attempt_ = 0;
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_BACKOFF_H
