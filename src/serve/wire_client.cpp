#include "wire_client.h"

#include <chrono>
#include <thread>
#include <vector>

#include "core/capture_io.h"
#include "core/errors.h"
#include "faults/source_faults.h"
#include "wire/decoder.h"
#include "wire/transport.h"

namespace eddie::serve
{

using wire::DecodeStatus;
using wire::FrameType;

namespace
{

/** Fate-stream salts (xor'ed into the seed, same scheme as
 *  serve/chaos.cpp's phase salts). */
constexpr std::uint64_t kWireFateSalt = 0x57495245464154ull;
constexpr std::uint64_t kCorruptByteSalt = 0x57495245464c50ull;

enum class BatchFate
{
    Clean,
    Tear,
    Disconnect,
    Duplicate,
    Reorder,
    Corrupt,
    HostileLen,
};

enum class ReadResult
{
    Frame,
    DecodeError,
    Timeout,
    Closed,
    IoErr,
};

/** Reads one frame, waiting at most @p deadline_ms (0 = one
 *  non-blocking poll). */
ReadResult
readFrame(wire::Conn &conn, wire::FrameDecoder &dec,
          double deadline_ms, wire::Decoded &out)
{
    char buf[4096];
    double waited_ms = 0.0;
    for (;;) {
        out = dec.next();
        if (out.status == DecodeStatus::Frame)
            return ReadResult::Frame;
        if (out.status == DecodeStatus::Error)
            return ReadResult::DecodeError;
        const double slice =
            deadline_ms - waited_ms < 50.0 ? deadline_ms - waited_ms
                                           : 50.0;
        std::size_t got = 0;
        switch (conn.recvSome(buf, sizeof buf,
                              slice > 0.0 ? slice : 0.0, got)) {
        case wire::Conn::RecvStatus::Data: {
            std::size_t off = 0;
            while (off < got)
                off += dec.feed(buf + off, got - off);
            continue;
        }
        case wire::Conn::RecvStatus::Timeout:
            waited_ms += slice > 0.0 ? slice : 0.0;
            if (waited_ms >= deadline_ms)
                return ReadResult::Timeout;
            continue;
        case wire::Conn::RecvStatus::Closed: {
            dec.endOfInput();
            out = dec.next();
            return out.status == DecodeStatus::Frame
                       ? ReadResult::Frame
                       : ReadResult::Closed;
        }
        case wire::Conn::RecvStatus::Error:
            return ReadResult::IoErr;
        }
    }
}

} // namespace

WireClient::WireClient(WireClientConfig cfg) : cfg_(std::move(cfg))
{
}

WireClientReport
WireClient::stream(SampleSource &src)
{
    WireClientReport rep;
    const std::uint64_t tenant_hash = wire::tenantHash(cfg_.tenant);
    const WireChaosConfig &chaos = cfg_.chaos;
    const bool chaos_on =
        chaos.tear_prob + chaos.disconnect_prob +
            chaos.duplicate_prob + chaos.reorder_prob +
            chaos.corrupt_prob + chaos.hostile_len_prob >
        0.0;

    const auto napMs = [this](double ms) {
        if (cfg_.sleep)
            cfg_.sleep(ms);
        else
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
    };
    const auto sendBytes = [&rep](wire::Conn &conn,
                                  const std::string &bytes) {
        if (!conn.sendAll(bytes.data(), bytes.size()))
            return false;
        rep.bytes_sent += bytes.size();
        return true;
    };
    /** Per-sequence faulted-attempt counters backing the forced-clean
     *  cap (chaos must not livelock a batch). */
    std::map<std::uint64_t, std::uint64_t> fault_attempts;
    const auto drawFate = [&](std::uint64_t seq) {
        if (!chaos_on)
            return BatchFate::Clean;
        std::uint64_t &attempt = fault_attempts[seq];
        const double u = faults::fateUniform(
            chaos.seed ^ kWireFateSalt, seq, attempt);
        double edge = 0.0;
        BatchFate fate = BatchFate::Clean;
        if (u < (edge += chaos.tear_prob))
            fate = BatchFate::Tear;
        else if (u < (edge += chaos.disconnect_prob))
            fate = BatchFate::Disconnect;
        else if (u < (edge += chaos.duplicate_prob))
            fate = BatchFate::Duplicate;
        else if (u < (edge += chaos.reorder_prob))
            fate = BatchFate::Reorder;
        else if (u < (edge += chaos.corrupt_prob))
            fate = BatchFate::Corrupt;
        else if (u < (edge += chaos.hostile_len_prob))
            fate = BatchFate::HostileLen;
        if (fate == BatchFate::Clean)
            return fate;
        if (attempt >= chaos.max_consecutive)
            return BatchFate::Clean; // forced clean: chaos must end
        ++attempt;
        return fate;
    };

    Backoff backoff(cfg_.backoff);
    std::size_t attempts = 0;
    bool first_handshake = true;
    std::uint64_t last_resume = 0;
    std::string prev_frame;

    for (;;) {
        if (attempts >= cfg_.max_attempts) {
            rep.error = "wire client: attempts exhausted";
            return rep;
        }
        wire::Conn conn;
        try {
            conn = cfg_.tcp.empty() ? wire::connectUnix(cfg_.unix_path)
                                    : wire::connectTcp(cfg_.tcp);
        } catch (const core::IoError &) {
            ++attempts;
            napMs(backoff.nextDelayMs());
            continue;
        }
        ++rep.connects;
        if (rep.connects > 1)
            ++rep.reconnects;
        wire::FrameDecoder dec;

        // HELLO → ACK(resume) | NACK(fatal).
        wire::FrameHeader hello;
        hello.type = FrameType::Hello;
        hello.tenant = tenant_hash;
        hello.session = cfg_.session;
        hello.sequence = src.position();
        if (!sendBytes(conn, wire::encodeFrame(
                                 hello, wire::encodeHelloPayload(
                                            cfg_.tenant)))) {
            ++attempts;
            napMs(backoff.nextDelayMs());
            continue;
        }
        wire::Decoded d;
        if (readFrame(conn, dec, cfg_.ack_timeout_ms, d) !=
            ReadResult::Frame) {
            ++attempts;
            napMs(backoff.nextDelayMs());
            continue;
        }
        if (d.header.type == FrameType::Nack) {
            ++rep.nacks_received;
            wire::NackCode code = wire::NackCode::None;
            std::string msg;
            wire::decodeNackPayload(d.payload, d.header.payload_len,
                                    code, msg);
            // A refused HELLO is a policy decision, not a glitch:
            // retrying would hammer a server that said no.
            rep.error = "wire client: hello refused (";
            rep.error += wire::name(code);
            rep.error += ")";
            return rep;
        }
        if (d.header.type != FrameType::Ack) {
            ++attempts;
            napMs(backoff.nextDelayMs());
            continue;
        }
        const std::uint64_t resume = d.header.sequence;
        if (resume < src.position())
            rep.windows_replayed += src.position() - resume;
        if (!src.seek(resume)) {
            rep.error = "wire client: source cannot seek to resume "
                        "point";
            return rep;
        }
        if (first_handshake || resume > last_resume) {
            first_handshake = false;
            last_resume = resume;
            attempts = 0;
            backoff.reset();
        } else {
            ++attempts;
        }

        bool reconnect = false;
        while (!reconnect) {
            std::vector<core::Sts> batch;
            const std::uint64_t batch_start = src.position();
            bool at_eof = false;
            bool stalled = false;
            while (batch.size() < cfg_.batch_windows) {
                Pull p = src.next();
                if (p.status == PullStatus::Ready) {
                    batch.push_back(std::move(p.sts));
                    continue;
                }
                if (p.status == PullStatus::EndOfStream)
                    at_eof = true;
                else
                    stalled = true;
                break;
            }

            if (!batch.empty()) {
                wire::FrameHeader bh;
                bh.type = FrameType::StsBatch;
                bh.tenant = tenant_hash;
                bh.session = cfg_.session;
                bh.sequence = batch_start;
                const std::string payload =
                    core::encodeStsPayload(batch);
                std::string frame = wire::encodeFrame(bh, payload);
                bool nack_check = false;
                switch (drawFate(batch_start)) {
                case BatchFate::Clean:
                    if (!sendBytes(conn, frame)) {
                        reconnect = true;
                        break;
                    }
                    rep.windows_sent += batch.size();
                    ++rep.batches_sent;
                    prev_frame = frame;
                    break;
                case BatchFate::Duplicate:
                    ++rep.duplicate_batches;
                    if ((!prev_frame.empty() &&
                         !sendBytes(conn, prev_frame)) ||
                        !sendBytes(conn, frame)) {
                        reconnect = true;
                        break;
                    }
                    rep.windows_sent += batch.size();
                    ++rep.batches_sent;
                    prev_frame = frame;
                    break;
                case BatchFate::Tear: {
                    ++rep.torn_frames;
                    const std::string torn =
                        frame.substr(0, frame.size() / 2);
                    sendBytes(conn, torn); // best effort, then cut
                    reconnect = true;
                    break;
                }
                case BatchFate::Disconnect:
                    ++rep.forced_disconnects;
                    if (sendBytes(conn, frame)) {
                        rep.windows_sent += batch.size();
                        ++rep.batches_sent;
                        prev_frame = frame;
                    }
                    reconnect = true;
                    break;
                case BatchFate::Reorder: {
                    // Skip-ahead sequence: the server must refuse
                    // the gap rather than fabricate a hole.
                    ++rep.reordered_batches;
                    bh.sequence = batch_start + batch.size() + 1;
                    sendBytes(conn, wire::encodeFrame(bh, payload));
                    nack_check = true;
                    break;
                }
                case BatchFate::Corrupt: {
                    ++rep.corrupted_frames;
                    std::string bad = frame;
                    const std::size_t at =
                        std::size_t(faults::fateMix(
                            chaos.seed ^ kCorruptByteSalt,
                            batch_start, bad.size())) %
                        bad.size();
                    bad[at] = char(bad[at] ^ 0x20);
                    sendBytes(conn, bad);
                    nack_check = true;
                    break;
                }
                case BatchFate::HostileLen: {
                    // A length field past the server's cap with
                    // valid CRCs: only the bound check can say no.
                    ++rep.hostile_lengths;
                    wire::FrameHeader hh = bh;
                    hh.payload_len =
                        std::uint32_t(wire::kDefaultMaxPayload + 1);
                    sendBytes(conn,
                              wire::encodeHeaderRaw(hh, 0));
                    nack_check = true;
                    break;
                }
                }
                if (reconnect)
                    break;
                // Injected protocol faults: give the server a beat
                // to answer, then reconnect and replay.
                const double nack_wait = nack_check ? 200.0 : 0.0;
                wire::Decoded nd;
                switch (readFrame(conn, dec, nack_wait, nd)) {
                case ReadResult::Frame:
                    if (nd.header.type == FrameType::Nack)
                        ++rep.nacks_received;
                    reconnect = true;
                    break;
                case ReadResult::Timeout:
                    reconnect = nack_check;
                    break;
                default:
                    reconnect = true;
                    break;
                }
                continue;
            }

            if (at_eof) {
                const std::uint64_t total = src.position();
                wire::FrameHeader eh;
                eh.type = FrameType::Eof;
                eh.tenant = tenant_hash;
                eh.session = cfg_.session;
                eh.sequence = total;
                if (!sendBytes(conn,
                               wire::encodeFrame(eh, std::string()))) {
                    reconnect = true;
                    break;
                }
                wire::Decoded fd;
                const ReadResult rs =
                    readFrame(conn, dec, cfg_.ack_timeout_ms, fd);
                if (rs == ReadResult::Frame &&
                    fd.header.type == FrameType::Ack &&
                    fd.header.sequence == total) {
                    rep.delivered_all = true;
                    return rep;
                }
                if (rs == ReadResult::Frame &&
                    fd.header.type == FrameType::Nack)
                    ++rep.nacks_received;
                reconnect = true;
                break;
            }

            if (stalled) {
                wire::FrameHeader hb;
                hb.type = FrameType::Heartbeat;
                hb.tenant = tenant_hash;
                hb.session = cfg_.session;
                hb.sequence = src.position();
                if (!sendBytes(conn,
                               wire::encodeFrame(hb, std::string()))) {
                    reconnect = true;
                    break;
                }
                napMs(cfg_.stall_nap_ms);
            }
        }
        napMs(backoff.nextDelayMs());
    }
}

} // namespace eddie::serve
