#include "sts_queue.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace eddie::serve
{

std::size_t
stsBytes(const core::Sts &sts)
{
    return sizeof(core::Sts) +
           sts.peak_freqs.size() * sizeof(double);
}

StsQueue::StsQueue(const StsQueueConfig &cfg)
    : cfg_(cfg), ring_(std::max<std::size_t>(cfg.capacity, 1))
{
    if (cfg.capacity == 0)
        throw std::invalid_argument("sts queue: zero capacity");
}

bool
StsQueue::push(core::Sts sts)
{
    const std::size_t cost = stsBytes(sts);
    std::unique_lock<std::mutex> lock(mu_);
    // Over the bound when the ring is full OR admitting this window
    // would bust the byte quota. An oversized window against an empty
    // queue is admitted (see StsQueueConfig::max_bytes).
    const auto over = [this, cost] {
        return ring_.full() ||
               (cfg_.max_bytes != 0 && !ring_.empty() &&
                bytes_ + cost > cfg_.max_bytes);
    };
    if (over() && !closed_) {
        if (cfg_.policy == BackpressurePolicy::Block) {
            ++stats_.blocked_pushes;
            while (over() && !closed_) {
                not_full_.wait(lock);
                if (over() && !closed_)
                    ++stats_.spurious_wakeups;
            }
        } else {
            while (over() && !ring_.empty()) {
                const core::Sts victim = ring_.popFront();
                bytes_ -= stsBytes(victim);
                ++stats_.dropped_oldest;
            }
        }
    }
    if (closed_)
        return false;
    ring_.pushBack(std::move(sts));
    bytes_ += cost;
    ++stats_.pushed;
    stats_.max_depth =
        std::max<std::uint64_t>(stats_.max_depth, ring_.size());
    stats_.max_queued_bytes =
        std::max<std::uint64_t>(stats_.max_queued_bytes, bytes_);
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

bool
StsQueue::waitNotFullFor(double timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(timeout_ms, 0.0)));
    std::unique_lock<std::mutex> lock(mu_);
    // Same saturation notion as push(), minus the per-window cost
    // (unknown here): the caller's retry applies the exact bound.
    const auto saturated = [this] {
        return ring_.full() ||
               (cfg_.max_bytes != 0 && !ring_.empty() &&
                bytes_ >= cfg_.max_bytes);
    };
    while (saturated() && !closed_) {
        if (not_full_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            break;
    }
    return !saturated() || closed_;
}

std::optional<core::Sts>
StsQueue::popFor(double timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(timeout_ms, 0.0)));
    std::unique_lock<std::mutex> lock(mu_);
    while (ring_.empty() && !closed_) {
        if (not_empty_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            break;
        // Woken (not timed out) to a still-empty ring: spurious.
        if (ring_.empty() && !closed_)
            ++stats_.spurious_wakeups;
    }
    if (ring_.empty())
        return std::nullopt;
    core::Sts sts = ring_.popFront();
    bytes_ -= stsBytes(sts);
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return sts;
}

std::size_t
StsQueue::popBatch(std::vector<core::Sts> &out, std::size_t max_items,
                   double timeout_ms)
{
    out.clear();
    if (max_items == 0)
        return 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(timeout_ms, 0.0)));
    std::unique_lock<std::mutex> lock(mu_);
    while (ring_.empty() && !closed_) {
        if (not_empty_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            break;
        if (ring_.empty() && !closed_)
            ++stats_.spurious_wakeups;
    }
    while (!ring_.empty() && out.size() < max_items) {
        out.push_back(ring_.popFront());
        bytes_ -= stsBytes(out.back());
        ++stats_.popped;
    }
    lock.unlock();
    if (!out.empty())
        not_full_.notify_one();
    return out.size();
}

std::size_t
StsQueue::pushBatch(std::vector<core::Sts> &in, bool may_block)
{
    if (in.empty())
        return 0;
    std::size_t pushed = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (core::Sts &sts : in) {
            const std::size_t cost = stsBytes(sts);
            const auto over = [this, cost] {
                return ring_.full() ||
                       (cfg_.max_bytes != 0 && !ring_.empty() &&
                        bytes_ + cost > cfg_.max_bytes);
            };
            if (over() && !closed_) {
                if (cfg_.policy == BackpressurePolicy::Block) {
                    if (!may_block) {
                        // A deferred push is the non-blocking face of
                        // Block backpressure: the producer yields and
                        // holds the window instead of waiting here.
                        ++stats_.blocked_pushes;
                        break;
                    }
                    ++stats_.blocked_pushes;
                    // The consumer may be parked unaware of the
                    // windows already admitted this batch; wake it
                    // before waiting on it, or the hand-off deadlocks.
                    not_empty_.notify_one();
                    while (over() && !closed_) {
                        not_full_.wait(lock);
                        if (over() && !closed_)
                            ++stats_.spurious_wakeups;
                    }
                } else {
                    while (over() && !ring_.empty()) {
                        const core::Sts victim = ring_.popFront();
                        bytes_ -= stsBytes(victim);
                        ++stats_.dropped_oldest;
                    }
                }
            }
            if (closed_)
                break;
            ring_.pushBack(std::move(sts));
            bytes_ += cost;
            ++stats_.pushed;
            ++pushed;
            stats_.max_depth = std::max<std::uint64_t>(
                stats_.max_depth, ring_.size());
            stats_.max_queued_bytes = std::max<std::uint64_t>(
                stats_.max_queued_bytes, bytes_);
        }
    }
    if (pushed != 0)
        not_empty_.notify_one();
    in.erase(in.begin(),
             in.begin() + static_cast<std::ptrdiff_t>(pushed));
    return pushed;
}

std::size_t
StsQueue::headroom() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return 0;
    const std::size_t cap = std::max<std::size_t>(cfg_.capacity, 1);
    const std::size_t depth = ring_.size();
    return depth >= cap ? 0 : cap - depth;
}

void
StsQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

bool
StsQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

bool
StsQueue::drained() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && ring_.empty();
}

QueueStats
StsQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    QueueStats s = stats_;
    s.queued_bytes = bytes_;
    return s;
}

} // namespace eddie::serve
