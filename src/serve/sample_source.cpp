#include "sample_source.h"

#include <cerrno>
#include <chrono>
#include <fstream>
#include <thread>
#include <utility>

#include "core/capture_io.h"
#include "core/errors.h"

namespace eddie::serve
{

namespace
{

std::shared_ptr<const std::vector<core::Sts>>
loadStsFile(const std::string &path)
{
    errno = 0;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw core::ioErrorErrno("sts stream: open", path);
    return std::make_shared<const std::vector<core::Sts>>(
        core::loadStsStream(is));
}

} // namespace

VectorSource::VectorSource(
    std::shared_ptr<const std::vector<core::Sts>> stream)
    : stream_(std::move(stream))
{
}

StsFileSource::StsFileSource(const std::string &path)
    : VectorSource(loadStsFile(path))
{
}

Pull
VectorSource::next()
{
    if (pos_ >= stream_->size())
        return {PullStatus::EndOfStream, {}};
    return {PullStatus::Ready, (*stream_)[std::size_t(pos_++)]};
}

bool
VectorSource::seek(std::uint64_t pos)
{
    if (pos > stream_->size())
        return false;
    pos_ = pos;
    return true;
}

FlakySource::FlakySource(SampleSource &inner,
                         const faults::SourceFaultConfig &faults)
    : inner_(inner), faults_(faults)
{
    faults::validate(faults);
}

Pull
FlakySource::next()
{
    const auto fate =
        faults::pullFate(faults_, inner_.position(), attempt_);
    switch (fate) {
    case faults::PullFate::Stall:
        ++attempt_;
        ++stats_.stalls;
        return {PullStatus::Stalled, {}};
    case faults::PullFate::TransientError:
        ++attempt_;
        ++stats_.errors;
        return {PullStatus::TransientError, {}};
    case faults::PullFate::Deliver:
        break;
    }
    attempt_ = 0;
    Pull pull = inner_.next();
    if (pull.status == PullStatus::Ready)
        ++stats_.delivered;
    return pull;
}

bool
FlakySource::seek(std::uint64_t pos)
{
    if (!inner_.seek(pos))
        return false;
    // Fresh attempt counter: the schedule is keyed by (index,
    // attempt), so a replayed item re-draws its fates from attempt 0
    // exactly as the first pass did.
    attempt_ = 0;
    return true;
}

RetryingSource::RetryingSource(SampleSource &inner,
                               const RetryConfig &cfg, SleepFn sleep)
    : inner_(inner), cfg_(cfg), backoff_(cfg.backoff),
      sleep_(std::move(sleep))
{
    if (!sleep_)
        sleep_ = [](double ms) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
        };
}

Pull
RetryingSource::next()
{
    for (std::size_t attempt = 0;; ++attempt) {
        Pull pull = inner_.next();
        switch (pull.status) {
        case PullStatus::Ready:
            ++stats_.delivered;
            backoff_.reset();
            return pull;
        case PullStatus::EndOfStream:
            backoff_.reset();
            return pull;
        case PullStatus::Stalled:
            ++stats_.stalls;
            break;
        case PullStatus::TransientError:
            ++stats_.errors;
            break;
        }
        if (attempt + 1 >= cfg_.max_attempts) {
            ++stats_.give_ups;
            backoff_.reset();
            return {PullStatus::Stalled, {}};
        }
        ++stats_.retries;
        sleep_(backoff_.nextDelayMs());
    }
}

bool
RetryingSource::seek(std::uint64_t pos)
{
    if (!inner_.seek(pos))
        return false;
    backoff_.reset();
    return true;
}

SourceStats
RetryingSource::stats() const
{
    // Every stall/error the inner layers produced passed through
    // next() above, so this layer's counters already cover them;
    // re-adding inner_.stats() would double-count.
    return stats_;
}

} // namespace eddie::serve
