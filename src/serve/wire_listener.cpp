#include "wire_listener.h"

#include <chrono>

#include "core/capture_io.h"
#include "core/errors.h"

namespace eddie::serve
{

using wire::DecodeStatus;
using wire::FrameType;
using wire::NackCode;

namespace
{

NackCode
nackCodeFor(ShedReason reason)
{
    switch (reason) {
    case ShedReason::FleetSessionLimit:
        return NackCode::FleetSessionLimit;
    case ShedReason::TenantSessionLimit:
        return NackCode::TenantSessionLimit;
    case ShedReason::UnknownTenant:
        return NackCode::UnknownTenant;
    case ShedReason::BreakerOpen:
        return NackCode::BreakerOpen;
    case ShedReason::RateShed:
        break; // not an admission outcome
    }
    return NackCode::ProtocolError;
}

} // namespace

/**
 * Per-connection read pump: one carry buffer + decoder feed loop, so
 * bytes read during the handshake are never lost when the connection
 * moves on to streaming (a pipelining client may send HELLO and its
 * first batch in one segment).
 */
struct WireListener::Pump
{
    wire::Conn &conn;
    wire::FrameDecoder &dec;
    std::vector<char> buf;
    std::size_t off = 0;
    std::size_t len = 0;
    bool peer_closed = false;
    bool io_error = false;
    std::uint64_t bytes = 0;

    Pump(wire::Conn &c, wire::FrameDecoder &d, std::size_t chunk)
        : conn(c), dec(d), buf(chunk)
    {
    }

    /** One decode attempt, waiting at most @p slice_ms for bytes.
     *  NeedMore means timeout, peer close, or I/O error — the flags
     *  say which. */
    wire::Decoded step(double slice_ms)
    {
        for (;;) {
            wire::Decoded d = dec.next();
            if (d.status != DecodeStatus::NeedMore)
                return d;
            if (off < len) {
                // A full decoder always yields Frame/Error on the
                // next next(), so feed() == 0 cannot livelock here.
                off += dec.feed(buf.data() + off, len - off);
                continue;
            }
            if (peer_closed) {
                dec.endOfInput();
                return dec.next();
            }
            std::size_t got = 0;
            switch (conn.recvSome(buf.data(), buf.size(), slice_ms,
                                  got)) {
            case wire::Conn::RecvStatus::Data:
                off = 0;
                len = got;
                bytes += got;
                continue;
            case wire::Conn::RecvStatus::Timeout:
                return d;
            case wire::Conn::RecvStatus::Closed:
                peer_closed = true;
                continue;
            case wire::Conn::RecvStatus::Error:
                io_error = true;
                return d;
            }
        }
    }
};

WireListener::WireListener(TenantRegistry &registry,
                           WireListenerConfig cfg)
    : registry_(registry), cfg_(std::move(cfg))
{
}

WireListener::~WireListener()
{
    drainAndClose();
}

void
WireListener::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (started_ || stopping_)
            return;
        started_ = true;
    }
    if (!cfg_.tcp.empty())
        tcp_listener_ = wire::Listener::tcp(cfg_.tcp);
    if (!cfg_.unix_path.empty())
        pipe_listener_ = wire::Listener::unixPath(cfg_.unix_path);
    std::lock_guard<std::mutex> lock(mu_);
    if (tcp_listener_.valid())
        accept_threads_.emplace_back(&WireListener::acceptLoop, this,
                                     &tcp_listener_);
    if (pipe_listener_.valid())
        accept_threads_.emplace_back(&WireListener::acceptLoop, this,
                                     &pipe_listener_);
}

std::string
WireListener::tcpAddress() const
{
    return tcp_listener_.valid() ? tcp_listener_.address()
                                 : std::string();
}

std::string
WireListener::pipeAddress() const
{
    return pipe_listener_.valid() ? pipe_listener_.address()
                                  : std::string();
}

void
WireListener::acceptLoop(wire::Listener *listener)
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopping_)
                return;
        }
        wire::Conn conn = listener->accept(cfg_.accept_poll_ms);
        if (!conn.valid())
            continue;
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return; // conn closes on scope exit
        ++stats_.connections_accepted;
        readers_.emplace_back(&WireListener::handleConnection, this,
                              std::move(conn));
    }
}

void
WireListener::handleConnection(wire::Conn conn)
{
    wire::FrameDecoder dec(
        wire::FrameDecoderConfig{cfg_.max_payload});
    Pump pump(conn, dec, cfg_.read_chunk);
    std::uint64_t generation = 0;
    SessionSlot *slot = handshake(conn, pump, generation);
    if (slot != nullptr)
        streamLoop(conn, pump, *slot, generation);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.wire.merge(dec.stats());
    stats_.bytes_received += pump.bytes;
    ++stats_.connections_closed;
    if (slot != nullptr) {
        // We were the session's active reader; hand the slot back so
        // a reconnect can take over.
        slot->reader_active = false;
        slot->active_conn = nullptr;
        cv_.notify_all();
    }
}

WireListener::SessionSlot *
WireListener::handshake(wire::Conn &conn, Pump &pump,
                        std::uint64_t &generation)
{
    wire::Decoded d;
    double waited_ms = 0.0;
    for (;;) {
        d = pump.step(cfg_.read_poll_ms);
        if (d.status != DecodeStatus::NeedMore)
            break;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopping_)
                return nullptr;
        }
        if (pump.io_error || pump.peer_closed) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.handshake_failures;
            if (pump.io_error)
                ++stats_.conn_errors;
            return nullptr;
        }
        waited_ms += cfg_.read_poll_ms;
        if (waited_ms >= cfg_.hello_deadline_ms) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.handshake_failures;
            return nullptr;
        }
    }
    if (d.status == DecodeStatus::Error) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.handshake_failures;
        }
        sendNack(conn, 0, 0, 0, NackCode::MalformedFrame,
                 wire::name(d.error));
        return nullptr;
    }
    std::string tenant_id;
    if (d.header.type != FrameType::Hello ||
        !wire::decodeHelloPayload(d.payload, d.header.payload_len,
                                  tenant_id) ||
        wire::tenantHash(tenant_id) != d.header.tenant) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.handshake_failures;
            stats_.wire.count(d.header.type == FrameType::Hello
                                  ? wire::WireError::BadPayload
                                  : wire::WireError::Protocol);
        }
        sendNack(conn, d.header.tenant, d.header.session, 0,
                 NackCode::ProtocolError, "bad hello");
        return nullptr;
    }

    const std::pair<std::uint64_t, std::uint64_t> key{
        d.header.tenant, d.header.session};
    std::unique_lock<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    if (it == sessions_.end()) {
        if (frozen_ || stopping_) {
            ++stats_.late_rejects;
            lock.unlock();
            sendNack(conn, d.header.tenant, d.header.session, 0,
                     NackCode::AdmissionClosed, "admission closed");
            return nullptr;
        }
        auto slot = std::make_unique<SessionSlot>();
        slot->tenant_id = tenant_id;
        slot->tenant_hash = d.header.tenant;
        slot->session_key = d.header.session;
        slot->source = std::make_unique<WireSource>(
            tenant_id, d.header.session, cfg_.source);
        const TenantRegistry::OpenResult res =
            registry_.openSession(tenant_id, slot->source.get());
        if (!res.admitted) {
            ++stats_.admission_refusals;
            const NackCode code = nackCodeFor(res.reason);
            lock.unlock();
            sendNack(conn, d.header.tenant, d.header.session, 0,
                     code, name(res.reason));
            return nullptr;
        }
        SessionSlot *raw = slot.get();
        sources_.push_back(raw->source.get());
        raw->generation = 1;
        raw->reader_active = true;
        raw->active_conn = &conn;
        sessions_.emplace(key, std::move(slot));
        cv_.notify_all();
        generation = raw->generation;
        lock.unlock();
        sendAck(conn, *raw, raw->source->expected());
        return raw;
    }

    // Known session: take over from the previous reader (reconnect).
    SessionSlot &slot = *it->second;
    ++slot.generation;
    generation = slot.generation;
    if (slot.active_conn != nullptr)
        slot.active_conn->shutdownBoth();
    while (slot.reader_active) {
        if (stopping_)
            return nullptr;
        cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
    slot.reader_active = true;
    slot.active_conn = &conn;
    ++stats_.reattaches;
    lock.unlock();
    sendAck(conn, slot, slot.source->expected());
    return &slot;
}

void
WireListener::streamLoop(wire::Conn &conn, Pump &pump,
                         SessionSlot &slot, std::uint64_t generation)
{
    const auto superseded = [this, &slot, generation]() {
        std::lock_guard<std::mutex> lock(mu_);
        return stopping_ || slot.generation != generation;
    };
    double idle_ms = 0.0;
    for (;;) {
        if (superseded())
            return;
        const std::uint64_t bytes_before = pump.bytes;
        const wire::Decoded d = pump.step(cfg_.read_poll_ms);
        if (d.status == DecodeStatus::Error) {
            // Decoder counted the typed error; answer and drop.
            sendNack(conn, slot.tenant_hash, slot.session_key, 0,
                     NackCode::MalformedFrame, wire::name(d.error));
            return;
        }
        if (d.status == DecodeStatus::Frame) {
            idle_ms = 0.0;
            if (!dispatch(conn, slot, generation, d))
                return;
            continue;
        }
        if (pump.io_error) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.conn_errors;
            return;
        }
        if (pump.peer_closed)
            return; // clean EOF; truncation already counted
        if (pump.bytes != bytes_before) {
            idle_ms = 0.0;
            continue;
        }
        idle_ms += cfg_.read_poll_ms;
        if (idle_ms >= cfg_.idle_timeout_ms) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.idle_closes;
            }
            return;
        }
    }
}

bool
WireListener::dispatch(wire::Conn &conn, SessionSlot &slot,
                       std::uint64_t generation,
                       const wire::Decoded &d)
{
    if (d.header.tenant != slot.tenant_hash ||
        d.header.session != slot.session_key) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.wire.count(wire::WireError::Protocol);
        }
        sendNack(conn, slot.tenant_hash, slot.session_key,
                 d.header.sequence, NackCode::ProtocolError,
                 "session mismatch");
        return false;
    }
    switch (d.header.type) {
    case FrameType::StsBatch: {
        std::vector<core::Sts> batch;
        try {
            batch = core::decodeStsPayload(d.payload,
                                           d.header.payload_len);
        } catch (const core::Error &) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                stats_.wire.count(wire::WireError::BadPayload);
            }
            sendNack(conn, slot.tenant_hash, slot.session_key,
                     d.header.sequence, NackCode::MalformedFrame,
                     "bad sts payload");
            return false;
        }
        const auto abort = [this, &slot, generation]() {
            std::lock_guard<std::mutex> lock(mu_);
            return stopping_ || slot.generation != generation;
        };
        switch (slot.source->ingest(d.header.sequence,
                                    std::move(batch), abort)) {
        case WireSource::Ingest::Ok: {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.batches;
            return true;
        }
        case WireSource::Ingest::Gap: {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.sequence_gaps;
                stats_.wire.count(wire::WireError::SequenceGap);
            }
            sendNack(conn, slot.tenant_hash, slot.session_key,
                     d.header.sequence, NackCode::SequenceGap,
                     "sequence gap");
            return false;
        }
        case WireSource::Ingest::Closed:
        case WireSource::Ingest::Aborted:
            return false;
        }
        return false;
    }
    case FrameType::Heartbeat: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.heartbeats;
        return true;
    }
    case FrameType::Eof: {
        switch (slot.source->noteEof(d.header.sequence)) {
        case WireSource::Ingest::Ok: {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.eofs;
            }
            sendAck(conn, slot, d.header.sequence);
            return false; // stream complete; close
        }
        default: {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.sequence_gaps;
                stats_.wire.count(wire::WireError::SequenceGap);
            }
            sendNack(conn, slot.tenant_hash, slot.session_key,
                     d.header.sequence, NackCode::SequenceGap,
                     "eof below expected");
            return false;
        }
        }
    }
    case FrameType::Hello:
    case FrameType::Ack:
    case FrameType::Nack: {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.wire.count(wire::WireError::Protocol);
        }
        sendNack(conn, slot.tenant_hash, slot.session_key,
                 d.header.sequence, NackCode::ProtocolError,
                 "unexpected frame type");
        return false;
    }
    }
    return false;
}

void
WireListener::sendAck(wire::Conn &conn, const SessionSlot &slot,
                      std::uint64_t sequence)
{
    wire::FrameHeader h;
    h.type = FrameType::Ack;
    h.tenant = slot.tenant_hash;
    h.session = slot.session_key;
    h.sequence = sequence;
    const std::string bytes = wire::encodeFrame(h, std::string());
    // Send outside mu_: a non-reading peer may block sendAll, and
    // drainAndClose needs the lock to shut that very peer down.
    const bool sent = conn.sendAll(bytes.data(), bytes.size());
    std::lock_guard<std::mutex> lock(mu_);
    if (sent)
        ++stats_.acks_sent;
    else
        ++stats_.conn_errors;
}

void
WireListener::sendNack(wire::Conn &conn, std::uint64_t tenant,
                       std::uint64_t session, std::uint64_t sequence,
                       NackCode code, const std::string &msg)
{
    wire::FrameHeader h;
    h.type = FrameType::Nack;
    h.tenant = tenant;
    h.session = session;
    h.sequence = sequence;
    const std::string bytes =
        wire::encodeFrame(h, wire::encodeNackPayload(code, msg));
    const bool sent = conn.sendAll(bytes.data(), bytes.size());
    std::lock_guard<std::mutex> lock(mu_);
    if (sent)
        ++stats_.nacks_sent;
    else
        ++stats_.conn_errors;
}

std::size_t
WireListener::awaitSessions(std::size_t n, double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    cv_.wait_until(lock, deadline, [this, n]() {
        return stopping_ || sources_.size() >= n;
    });
    return sources_.size();
}

void
WireListener::freezeAdmission()
{
    std::lock_guard<std::mutex> lock(mu_);
    frozen_ = true;
}

void
WireListener::drainAndClose()
{
    std::vector<std::thread> accepters;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        accepters.swap(accept_threads_);
        cv_.notify_all();
    }
    tcp_listener_.close();
    pipe_listener_.close();
    for (std::thread &t : accepters)
        t.join();
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Supersede and wake every reader: shutdown unblocks reads,
        // closeIngest unblocks a reader parked on a full receive
        // window (and lets a feeder drain to Stalled).
        for (auto &entry : sessions_) {
            SessionSlot &slot = *entry.second;
            ++slot.generation;
            if (slot.active_conn != nullptr)
                slot.active_conn->shutdownBoth();
            slot.source->closeIngest();
        }
        readers.swap(readers_);
        cv_.notify_all();
    }
    for (std::thread &t : readers)
        t.join();
}

WireListenerStats
WireListener::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    WireListenerStats out = stats_;
    for (const WireSource *src : sources_) {
        const WireSourceStats ws = src->wireStats();
        out.duplicates_dropped += ws.duplicates_dropped;
    }
    return out;
}

std::vector<WireSource *>
WireListener::sources() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sources_;
}

} // namespace eddie::serve
