#include "backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace eddie::serve
{

namespace
{

/** splitmix64 finalizer; same construction as the fault schedules in
 *  src/faults, so jitter is reproducible from (seed, attempt) alone. */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t attempt)
{
    std::uint64_t z = seed ^ (attempt * 0x9E3779B97F4A7C15ULL) ^
                      0xBACC0FFULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void
checkFinite(double v, const char *what)
{
    if (!std::isfinite(v))
        throw std::invalid_argument(std::string("backoff config: ") +
                                    what + " is not finite");
}

} // namespace

void
validate(const BackoffConfig &cfg)
{
    checkFinite(cfg.initial_ms, "initial_ms");
    checkFinite(cfg.multiplier, "multiplier");
    checkFinite(cfg.max_ms, "max_ms");
    checkFinite(cfg.jitter, "jitter");
    if (cfg.initial_ms < 0.0)
        throw std::invalid_argument("backoff config: negative initial_ms");
    if (cfg.multiplier < 1.0)
        throw std::invalid_argument("backoff config: multiplier below 1");
    if (cfg.max_ms < cfg.initial_ms)
        throw std::invalid_argument(
            "backoff config: max_ms below initial_ms");
    if (cfg.jitter < 0.0 || cfg.jitter >= 1.0)
        throw std::invalid_argument(
            "backoff config: jitter outside [0, 1)");
}

Backoff::Backoff(const BackoffConfig &cfg) : cfg_(cfg)
{
    validate(cfg);
}

double
Backoff::nextDelayMs()
{
    const std::size_t k = attempt_++;
    // pow() instead of a running product so the delay for attempt k
    // does not depend on how often reset() rewound the schedule.
    double delay = cfg_.initial_ms *
                   std::pow(cfg_.multiplier, double(k));
    delay = std::min(delay, cfg_.max_ms);
    if (cfg_.jitter > 0.0) {
        const double u =
            double(mix(cfg_.seed, k) >> 11) * 0x1.0p-53;
        delay *= 1.0 + cfg_.jitter * (2.0 * u - 1.0);
    }
    return delay;
}

} // namespace eddie::serve
