/**
 * @file
 * Server-side bridge from a wire connection to the supervised
 * runtime: a WireSource is the SampleSource a WireListener registers
 * with TenantRegistry when a HELLO is admitted. Two halves share it:
 *
 *  - the *ingest* half (the connection's reader thread) appends
 *    in-order STS-BATCH windows through a byte-budgeted StsQueue —
 *    the receive window. A full window blocks the reader, the reader
 *    stops draining the socket, and TCP pushes the pressure back to
 *    the producer: slow-consumer backpressure ends at the peer, not
 *    in this process's heap.
 *  - the *consumer* half (the supervisor's feeder thread) pulls
 *    windows via next(), which also maintains a bounded replay deque
 *    of delivered windows so seek() — the checkpoint-recovery
 *    contract of SampleSource — rewinds locally without asking the
 *    peer to rewind.
 *
 * Sequence discipline (the at-most-once/at-least-once meeting point):
 * expected() is the next window index the source will accept. A batch
 * below it is a duplicate replay (dropped, counted — reconnecting
 * clients replay from their last ACK, so overlap is normal); a batch
 * above it is a SequenceGap (the connection is NACKed and dropped —
 * accepting it would fabricate a hole in the verdict stream). The
 * result is that windows enter the monitor exactly once, in order,
 * regardless of how messy the transport was — which is what keeps
 * wire verdicts bit-identical to the in-process path.
 *
 * next() blocks internally (in poll slices, so shutdown stays
 * prompt) up to stall_timeout_ms before surfacing Stalled: the
 * supervisor treats a Stalled pull as a dead source and spends a
 * restart on it, so brief wire hiccups must be absorbed here and
 * only a genuinely silent peer escalates.
 */

#ifndef EDDIE_SERVE_WIRE_SOURCE_H
#define EDDIE_SERVE_WIRE_SOURCE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sample_source.h"
#include "sts_queue.h"

namespace eddie::serve
{

struct WireSourceConfig
{
    /** Receive-window bounds (the ingest StsQueue, Block policy). */
    std::size_t recv_capacity = 256;
    /** Byte quota of the receive window; 0 = unbounded. */
    std::size_t recv_max_bytes = 4u << 20;
    /** Delivered windows retained for seek() replay. Must cover the
     *  furthest rewind checkpoint recovery can ask for (shard queue
     *  depth + checkpoint interval); seeks below the retained base
     *  fail and the session escalates. */
    std::size_t replay_window = 16384;
    /** How long next() absorbs an idle wire before reporting
     *  Stalled (which the supervisor escalates — see file comment). */
    double stall_timeout_ms = 30000.0;
    /** Poll slice inside next(); bounds shutdown latency. */
    double poll_slice_ms = 20.0;
};

/** Ingest-half counters (the consumer half uses SourceStats). */
struct WireSourceStats
{
    /** Windows accepted in order. */
    std::uint64_t ingested = 0;
    /** Duplicate windows dropped (reconnect replay overlap). */
    std::uint64_t duplicates_dropped = 0;
    /** Batches refused for opening a sequence gap. */
    std::uint64_t gaps_refused = 0;
    QueueStats recv;
};

class WireSource : public SampleSource
{
  public:
    WireSource(std::string tenant_id, std::uint64_t session_key,
               const WireSourceConfig &cfg);

    // Consumer half (supervisor feeder; single consumer).
    Pull next() override;
    bool seek(std::uint64_t pos) override;
    std::uint64_t position() const override { return cursor_.load(); }
    SourceStats stats() const override;

    // Ingest half (connection reader thread; single writer — the
    // listener serializes reader handoff across reconnects).
    enum class Ingest
    {
        Ok,
        /** first_seq > expected(): refuse, NACK, drop connection. */
        Gap,
        /** The receive window was closed (shutdown). */
        Closed,
        /** @p abort returned true while waiting for window space
         *  (reader superseded by a reconnect). */
        Aborted,
    };

    /**
     * Appends @p batch starting at stream index @p first_seq,
     * dropping the already-ingested prefix and blocking (in small
     * sleeps, polling @p abort) while the receive window is full.
     */
    Ingest ingest(std::uint64_t first_seq,
                  std::vector<core::Sts> &&batch,
                  const std::function<bool()> &abort);

    /** EOF claim from the peer: accepted (and the receive window
     *  closed) when @p total == expected(), else Gap. */
    Ingest noteEof(std::uint64_t total);

    /** Next window index the ingest half will accept — the resume
     *  point ACKed back to (re)connecting clients. */
    std::uint64_t expected() const { return expected_.load(); }

    /** Closes the receive window: blocked ingest returns Closed,
     *  blocked next() drains and then reports Stalled (or
     *  EndOfStream after an accepted EOF). Idempotent. */
    void closeIngest() { recv_.close(); }

    bool eofKnown() const { return eof_total_.load() >= 0; }

    const std::string &tenantId() const { return tenant_id_; }
    std::uint64_t sessionKey() const { return session_key_; }

    WireSourceStats wireStats() const;

  private:
    void retain(core::Sts sts);

    const std::string tenant_id_;
    const std::uint64_t session_key_;
    const WireSourceConfig cfg_;

    StsQueue recv_;
    std::atomic<std::uint64_t> expected_{0};
    std::atomic<std::int64_t> eof_total_{-1};
    std::atomic<std::uint64_t> duplicates_{0};
    std::atomic<std::uint64_t> gaps_{0};
    std::atomic<std::uint64_t> ingested_{0};

    // Consumer-half state (feeder thread only; cursor_ is atomic so
    // position() reads from other threads are clean).
    std::atomic<std::uint64_t> cursor_{0};
    /** Staging for batched recv_ drains: next() pops up to a batch of
     *  windows under one queue lock and hands them out one per call,
     *  instead of paying a mutex round-trip and producer wakeup per
     *  window. Windows here count as received-but-undelivered, same
     *  as windows still inside recv_ — the cursor/retained accounting
     *  only ever sees delivered windows, so seek() semantics are
     *  unchanged. */
    std::vector<core::Sts> pending_;
    std::size_t pending_pos_ = 0;
    std::deque<core::Sts> retained_;
    std::uint64_t retained_base_ = 0;
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> stalls_{0};
};

} // namespace eddie::serve

#endif // EDDIE_SERVE_WIRE_SOURCE_H
