#include "chaos.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <thread>
#include <utility>

#include "core/errors.h"
#include "core/trainer.h"
#include "faults/source_faults.h"
#include "prog/builder.h"
#include "prog/regions.h"
#include "supervisor.h"
#include "wire_listener.h"

namespace eddie::serve
{

namespace
{

/** Missing-peak sentinel of the synthetic model (matches the serve
 *  test fixtures). */
constexpr double kSentinel = 2e7;

/** Salts separating the harness's independent fate draws. */
constexpr std::uint64_t kFateSalt = 0xC4A05'F47EULL;
constexpr std::uint64_t kStreamSalt = 0x57A7;
constexpr std::uint64_t kPolicySalt = 0x5EDD;
constexpr std::uint64_t kTearSalt = 0x7EA2;
constexpr std::uint64_t kWireSalt = 0x7769726;

prog::RegionGraph
twoLoopGraph()
{
    prog::ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 8);
    auto l0 = b.newLabel();
    b.bind(l0);
    b.addi(1, 1, 1);
    b.blt(1, 2, l0);
    b.nop();
    b.li(1, 0);
    auto l1 = b.newLabel();
    b.bind(l1);
    b.addi(1, 1, 1);
    b.blt(1, 2, l1);
    b.halt();
    static prog::Program p = b.take();
    return prog::analyzeProgram(p);
}

core::Sts
sharpSts(std::mt19937_64 &rng, double t, std::size_t region)
{
    std::normal_distribution<double> jitter(0.0, 2000.0);
    core::Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs = {1e6 + jitter(rng), 2e6 + jitter(rng)};
    while (sts.peak_freqs.size() < 6)
        sts.peak_freqs.push_back(kSentinel);
    sts.true_region = region;
    sts.window_energy = 1.0;
    sts.peak_energy_frac = 0.8;
    return sts;
}

core::Sts
anomalousSts(std::mt19937_64 &rng, double t)
{
    core::Sts sts = sharpSts(rng, t, 0);
    sts.peak_freqs[0] = 5e6;
    sts.peak_freqs[1] = 7e6;
    sts.injected = true;
    return sts;
}

core::Sts
dropoutSts(double t)
{
    core::Sts sts;
    sts.t_start = t;
    sts.t_end = t + 1e-4;
    sts.peak_freqs.assign(6, kSentinel);
    sts.true_region = 0;
    sts.window_energy = 1e-6;
    sts.peak_energy_frac = 0.0;
    sts.faulted = true;
    return sts;
}

/**
 * One shared synthetic model for every chaos run. Fixed seed: the
 * model is the control, the fate stream (cfg.seed) the variable, so a
 * failing seed isolates a scheduling bug rather than a training one.
 */
std::shared_ptr<const core::TrainedModel>
chaosModel()
{
    static const std::shared_ptr<const core::TrainedModel> model = [] {
        std::mt19937_64 rng(0xEDD1E);
        std::vector<std::vector<core::Sts>> runs;
        for (int r = 0; r < 6; ++r) {
            std::vector<core::Sts> run;
            double t = 0.0;
            for (int i = 0; i < 160; ++i, t += 5e-5)
                run.push_back(sharpSts(rng, t, i < 80 ? 0 : 1));
            runs.push_back(std::move(run));
        }
        return std::make_shared<const core::TrainedModel>(withAlpha(
            core::train(runs, twoLoopGraph(), kSentinel), 1e-6));
    }();
    return model;
}

/**
 * One session's stream: clean two-region trace with an anomaly burst
 * and a short dropout episode (short enough not to read as a
 * quarantine storm), so checkpoint cuts land across rejection
 * streaks, reports, and quarantine state.
 */
std::vector<core::Sts>
chaosStream(std::uint64_t seed, std::size_t len)
{
    std::mt19937_64 rng(seed);
    std::vector<core::Sts> stream;
    const std::size_t half = len / 2;
    const std::size_t burst = len * 9 / 16;
    const std::size_t outage = len * 3 / 4;
    double t = 0.0;
    for (std::size_t i = 0; i < len; ++i, t += 5e-5) {
        if (i >= burst && i < burst + len / 8)
            stream.push_back(anomalousSts(rng, t));
        else if (i >= outage && i < outage + 5)
            stream.push_back(dropoutSts(t));
        else
            stream.push_back(sharpSts(rng, t, i < half ? 0 : 1));
    }
    return stream;
}

struct SerialBaseline
{
    std::vector<core::StepRecord> records;
    std::vector<core::AnomalyReport> reports;
};

SerialBaseline
serialRun(const core::TrainedModel &model,
          const std::vector<core::Sts> &stream,
          const core::MonitorConfig &cfg)
{
    core::Monitor mon(model, cfg);
    for (const core::Sts &sts : stream)
        mon.step(sts);
    return {mon.records(), mon.reports()};
}

bool
sameRecords(const std::vector<core::StepRecord> &a,
            const std::vector<core::StepRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].region != b[i].region || a[i].tested != b[i].tested ||
            a[i].rejected != b[i].rejected ||
            a[i].reported != b[i].reported ||
            a[i].transitioned != b[i].transitioned ||
            a[i].degraded != b[i].degraded)
            return false;
    }
    return true;
}

bool
sameReports(const std::vector<core::AnomalyReport> &a,
            const std::vector<core::AnomalyReport> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].step != b[i].step || a[i].time != b[i].time ||
            a[i].region != b[i].region)
            return false;
    }
    return true;
}

/** Removes @p bytes from the end of @p path; returns bytes actually
 *  removed (0 when the file is missing or too small to keep a
 *  non-empty prefix). */
std::uint64_t
truncateTail(const std::string &path, std::uint64_t bytes)
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec || size <= 1)
        return 0;
    bytes = std::min<std::uint64_t>(bytes, size - 1);
    std::filesystem::resize_file(path, size - bytes, ec);
    return ec ? 0 : bytes;
}

/** XOR-flips 8 bytes in the middle of @p path (past any header
 *  magic), guaranteeing a payload-CRC mismatch on decode. */
bool
flipBytes(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec || size < 48)
        return false;
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f)
        return false;
    const std::uintmax_t off = size / 2;
    char buf[8];
    f.seekg(static_cast<std::streamoff>(off));
    f.read(buf, sizeof buf);
    if (f.gcount() != sizeof buf)
        return false;
    for (char &c : buf)
        c = static_cast<char>(c ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(buf, sizeof buf);
    f.flush();
    return f.good();
}

std::string
tenantId(std::size_t index)
{
    // Built via += : the rvalue operator+(const char*, string&&)
    // path trips GCC 12's -Werror=restrict false positive.
    std::string id("t");
    id += std::to_string(index);
    return id;
}

} // namespace

StepFate
stepFate(const ChaosConfig &cfg, std::size_t session, std::size_t step,
         std::uint64_t attempt)
{
    if (attempt >= cfg.max_consecutive)
        return StepFate::None; // forced delivery: chaos delays, never
                               // livelocks a step
    const double u = faults::fateUniform(
        cfg.seed ^ kFateSalt, session,
        (static_cast<std::uint64_t>(step) << 8) | attempt);
    double p = 0.0;
    if (cfg.fates.worker_kill) {
        p += cfg.kill_prob;
        if (u < p)
            return StepFate::Kill;
    }
    if (cfg.fates.worker_hang) {
        p += cfg.hang_prob;
        if (u < p)
            return StepFate::Hang;
    }
    return StepFate::None;
}

ChaosReport
runChaos(const ChaosConfig &cfg)
{
    if (cfg.tenants < 2)
        throw core::Error("chaos: need at least 2 tenants (one "
                          "victim, one neighbor)");
    if (cfg.sessions_per_tenant < 1 || cfg.stream_len < 16)
        throw core::Error("chaos: need >= 1 session per tenant and a "
                          "stream of >= 16 windows");

    ChaosReport rep;
    const auto fail = [&rep](std::string msg) {
        rep.violations.push_back(std::move(msg));
    };

    const auto model = chaosModel();
    const core::MonitorConfig mon_cfg;
    const std::size_t spt = cfg.sessions_per_tenant;
    const std::size_t nsess = cfg.tenants * spt;

    std::vector<std::shared_ptr<const std::vector<core::Sts>>> streams;
    std::vector<SerialBaseline> serial;
    for (std::size_t s = 0; s < nsess; ++s) {
        streams.push_back(
            std::make_shared<const std::vector<core::Sts>>(chaosStream(
                faults::fateMix(cfg.seed, s, kStreamSalt),
                cfg.stream_len)));
        serial.push_back(serialRun(*model, *streams[s], mon_cfg));
    }

    // Shed vs Throttle posture for the starvation fate, by seed, so a
    // grid exercises both (Throttle keeps the victim's verdicts
    // comparable; Shed is best-effort and exempts the victim from the
    // bit-identity checks below).
    const bool shed_policy =
        (faults::fateMix(cfg.seed, 0, kPolicySalt) & 1) != 0;

    const auto buildRegistry = [&](TenantRegistry &reg,
                                   bool with_quotas) {
        for (std::size_t t = 0; t < cfg.tenants; ++t) {
            TenantSpec spec;
            spec.id = tenantId(t);
            spec.model = model;
            spec.quota.restart_budget = cfg.restart_budget;
            spec.quota.restart_window_ms = cfg.restart_window_ms;
            spec.breaker.fault_threshold = cfg.fault_threshold;
            if (t == 0 && with_quotas) {
                if (cfg.fates.queue_overflow) {
                    spec.quota.queue_capacity = 2;
                    spec.quota.queue_max_bytes = 4096;
                }
                if (cfg.fates.starvation) {
                    spec.quota.sts_per_s = 4000.0;
                    spec.quota.burst = 8.0;
                    spec.quota.rate_policy = shed_policy
                                                 ? RatePolicy::Shed
                                                 : RatePolicy::Throttle;
                }
            }
            reg.addTenant(std::move(spec));
        }
    };
    const auto openSessions =
        [&](TenantRegistry &reg,
            std::vector<std::unique_ptr<VectorSource>> &sources) {
            for (std::size_t t = 0; t < cfg.tenants; ++t) {
                for (std::size_t k = 0; k < spt; ++k) {
                    sources.push_back(std::make_unique<VectorSource>(
                        streams[t * spt + k]));
                    const auto res = reg.openSession(
                        tenantId(t), sources.back().get());
                    if (!res.admitted)
                        throw core::Error(
                            "chaos: session refused at setup");
                }
            }
        };
    ServeConfig scfg;
    scfg.monitor = mon_cfg;
    scfg.watchdog.heartbeat_deadline_ms = cfg.heartbeat_deadline_ms;
    scfg.watchdog.poll_interval_ms = cfg.poll_interval_ms;
    scfg.checkpoint_interval = cfg.checkpoint_interval;
    scfg.full_snapshot_every = cfg.full_snapshot_every;
    scfg.scheduler.workers = cfg.scheduler_workers;
    if (!cfg.dir.empty()) {
        scfg.checkpoint_path = cfg.dir + "/ck";
        scfg.checkpoint_archive = cfg.archive;
    }

    // ---- Phase A: faulted fleet run --------------------------------
    std::uint64_t victim_shed = 0;
    {
        TenantRegistry reg;
        buildRegistry(reg, true);
        std::vector<std::unique_ptr<VectorSource>> sources;
        openSessions(reg, sources);

        Supervisor sup(scfg);
        std::vector<std::vector<std::uint64_t>> attempts(
            nsess, std::vector<std::uint64_t>(cfg.stream_len, 0));
        std::atomic<std::uint64_t> kills{0}, hangs{0};
        const std::string victim_id = tenantId(0);
        sup.setFleetStepHook([&](std::size_t session,
                                 const std::string &tenant,
                                 std::size_t step,
                                 const std::atomic<bool> &cancel) {
            if (tenant != victim_id || session >= nsess ||
                step >= cfg.stream_len)
                return;
            const std::uint64_t attempt = attempts[session][step]++;
            switch (stepFate(cfg, session, step, attempt)) {
            case StepFate::Kill:
                kills.fetch_add(1);
                throw core::Error("chaos: injected worker kill");
            case StepFate::Hang:
                hangs.fetch_add(1);
                while (!cancel.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                break;
            case StepFate::None:
                break;
            }
        });

        const FleetResult fr = sup.runFleet(reg);
        const core::ServeStats st = sup.stats();
        rep.kills += kills.load();
        rep.hangs += hangs.load();
        rep.blocked_pushes += st.blocked_pushes;
        rep.restarts += st.worker_restarts;
        rep.breaker_trips += st.breaker_trips;
        rep.escalations += st.escalations;
        rep.snapshot_decode_failures += st.snapshot_decode_failures;

        const TenantResult &victim = fr.tenants[0];
        victim_shed = victim.windows_shed;
        rep.windows_shed += victim.windows_shed;
        rep.windows_throttled += victim.windows_throttled;
        rep.victim_isolated =
            victim.breaker_tripped || victim.budget_escalated;

        if (st.worker_restarts > cfg.restart_budget)
            fail("phase A: " + std::to_string(st.worker_restarts) +
                 " restarts exceeded the victim budget of " +
                 std::to_string(cfg.restart_budget));
        for (std::size_t t = 1; t < cfg.tenants; ++t) {
            if (fr.tenants[t].breaker_tripped)
                fail("phase A: healthy tenant " + tenantId(t) +
                     " breaker tripped (cause " +
                     name(fr.tenants[t].breaker_cause) + ")");
        }
        for (std::size_t s = 0; s < nsess; ++s) {
            const bool is_victim = s / spt == 0;
            const ShardResult &r = fr.sessions[s];
            if (is_victim) {
                // Victim bit-identity only holds when nothing was
                // shed and it survived: restart replay from cuts is
                // exact under Block + Throttle.
                if (!r.escalated && victim_shed == 0 &&
                    (!sameRecords(r.records, serial[s].records) ||
                     !sameReports(r.reports, serial[s].reports)))
                    fail("phase A: surviving victim session " +
                         std::to_string(s) +
                         " diverged from the serial run");
                continue;
            }
            if (r.escalated) {
                fail("phase A: healthy session " + std::to_string(s) +
                     " escalated");
                continue;
            }
            if (!sameRecords(r.records, serial[s].records) ||
                !sameReports(r.reports, serial[s].reports)) {
                fail("phase A: healthy session " + std::to_string(s) +
                     " verdicts diverged from the serial run");
                continue;
            }
            ++rep.healthy_sessions_checked;
        }
    }

    // ---- Phase B: torn group commit, then resume -------------------
    if (!cfg.dir.empty() && cfg.fates.torn_commit) {
        // Archive mode tears the shared container's tail (the newest
        // commit group, whoever's it was). File mode tears whichever
        // tenant delta log is fattest — logs compact into the
        // snapshot on full rewrites, so a fast run can leave them
        // empty; then nothing tears and resume is trivially clean.
        std::string target = scfg.checkpoint_path + ".arc";
        if (!cfg.archive) {
            std::uintmax_t best = 0;
            for (std::size_t t = 0; t < cfg.tenants; ++t) {
                const std::string log = scfg.checkpoint_path + "." +
                                        tenantId(t) + ".dlt";
                std::error_code ec;
                const std::uintmax_t size =
                    std::filesystem::file_size(log, ec);
                if (!ec && size > best) {
                    best = size;
                    target = log;
                }
            }
        }
        const std::uint64_t bytes =
            1 + faults::fateMix(cfg.seed, kTearSalt, kTearSalt) % 512;
        rep.torn_bytes += truncateTail(target, bytes);

        TenantRegistry reg;
        buildRegistry(reg, false); // clean resume: no quotas
        std::vector<std::unique_ptr<VectorSource>> sources;
        openSessions(reg, sources);
        ServeConfig rcfg = scfg;
        rcfg.resume = true;
        Supervisor sup(rcfg);
        const FleetResult fr = sup.runFleet(reg);
        rep.snapshot_decode_failures +=
            sup.stats().snapshot_decode_failures;
        for (const TenantResult &tr : fr.tenants) {
            if (tr.breaker_tripped)
                fail("phase B: tenant " + tr.id +
                     " breaker tripped on a torn tail (cause " +
                     name(tr.breaker_cause) + ")");
        }
        for (std::size_t s = 0; s < nsess; ++s) {
            const ShardResult &r = fr.sessions[s];
            if (r.escalated) {
                fail("phase B: session " + std::to_string(s) +
                     " escalated during torn-tail resume");
                continue;
            }
            // A Shed victim's checkpoints are best-effort (source
            // position ran ahead of the monitor); skip only then.
            if (s / spt == 0 && victim_shed != 0)
                continue;
            if (!sameRecords(r.records, serial[s].records) ||
                !sameReports(r.reports, serial[s].reports))
                fail("phase B: session " + std::to_string(s) +
                     " did not replay to the serial verdicts after "
                     "a torn tail");
        }
    }

    // ---- Phase C: corrupt victim snapshot, then resume -------------
    if (!cfg.dir.empty() && cfg.fates.corrupt_checkpoint) {
        // Always file mode: the flip must provably hit the victim's
        // snapshot and nobody else's.
        ServeConfig ccfg = scfg;
        ccfg.checkpoint_path = cfg.dir + "/fc";
        ccfg.checkpoint_archive = false;
        {
            TenantRegistry reg;
            buildRegistry(reg, false);
            std::vector<std::unique_ptr<VectorSource>> sources;
            openSessions(reg, sources);
            Supervisor sup(ccfg);
            sup.runFleet(reg);
        }
        const std::string victim_snap =
            ccfg.checkpoint_path + "." + tenantId(0);
        if (!flipBytes(victim_snap)) {
            fail("phase C: victim snapshot " + victim_snap +
                 " missing or too small to corrupt");
        } else {
            ++rep.corrupted_snapshots;
            TenantRegistry reg;
            buildRegistry(reg, false);
            std::vector<std::unique_ptr<VectorSource>> sources;
            openSessions(reg, sources);
            ServeConfig rcfg = ccfg;
            rcfg.resume = true;
            Supervisor sup(rcfg);
            const FleetResult fr = sup.runFleet(reg);
            rep.snapshot_decode_failures +=
                sup.stats().snapshot_decode_failures;
            rep.breaker_trips += sup.stats().breaker_trips;

            const TenantResult &victim = fr.tenants[0];
            if (!victim.breaker_tripped ||
                victim.breaker_cause != FaultClass::CheckpointDecode)
                fail("phase C: corrupt snapshot did not trip the "
                     "victim's CheckpointDecode breaker");
            for (std::size_t s = 0; s < nsess; ++s) {
                const ShardResult &r = fr.sessions[s];
                if (s / spt == 0) {
                    if (!r.escalated)
                        fail("phase C: victim session " +
                             std::to_string(s) +
                             " served off a corrupt checkpoint");
                    continue;
                }
                if (r.escalated ||
                    !sameRecords(r.records, serial[s].records) ||
                    !sameReports(r.reports, serial[s].reports))
                    fail("phase C: healthy session " +
                         std::to_string(s) +
                         " disturbed by a neighbor's corrupt "
                         "snapshot");
            }
        }
    }

    // ---- Phase W: wire ingestion under byte-level chaos ------------
    if (cfg.wire_phase) {
        TenantRegistry reg;
        buildRegistry(reg, false);

        WireListenerConfig lcfg;
        // Transport by seed when both are available, so a grid covers
        // TCP loopback and the AF_UNIX path alike.
        const bool use_unix =
            !cfg.dir.empty() &&
            (faults::fateMix(cfg.seed, 1, kWireSalt) & 1) != 0;
        if (use_unix)
            lcfg.unix_path = cfg.dir + "/wire.sock";
        else
            lcfg.tcp = "127.0.0.1:0";
        // Small receive window so backpressure actually engages, and a
        // short stall budget so a failed client escalates (into a
        // violation) instead of hanging the run.
        lcfg.source.recv_capacity = 32;
        lcfg.source.stall_timeout_ms = 2000.0;
        lcfg.idle_timeout_ms = 10000.0;
        WireListener listener(reg, lcfg);
        listener.start();

        std::vector<WireClientReport> reports(nsess);
        std::vector<std::thread> clients;
        clients.reserve(nsess);
        for (std::size_t s = 0; s < nsess; ++s) {
            clients.emplace_back([&, s] {
                WireClientConfig ccfg;
                if (use_unix)
                    ccfg.unix_path = lcfg.unix_path;
                else
                    ccfg.tcp = listener.tcpAddress();
                ccfg.tenant = tenantId(s / spt);
                ccfg.session = s % spt + 1;
                ccfg.batch_windows = 16;
                ccfg.ack_timeout_ms = 5000.0;
                ccfg.backoff.initial_ms = 2.0;
                ccfg.backoff.max_ms = 50.0;
                ccfg.chaos = cfg.wire;
                ccfg.chaos.seed =
                    faults::fateMix(cfg.seed, s, kWireSalt);
                VectorSource src(streams[s]);
                reports[s] = WireClient(ccfg).stream(src);
            });
        }

        const std::size_t admitted =
            listener.awaitSessions(nsess, 30000.0);
        if (admitted < nsess) {
            fail("phase W: only " + std::to_string(admitted) + "/" +
                 std::to_string(nsess) +
                 " wire sessions admitted within the deadline");
            listener.drainAndClose();
            for (std::thread &th : clients)
                th.join();
        } else {
            listener.freezeAdmission();
            ServeConfig wcfg = scfg;
            // Wire sources block in next(); only the thread-pair
            // runtime tolerates a blocking source per feeder.
            wcfg.scheduler.workers = 0;
            if (!cfg.dir.empty())
                wcfg.checkpoint_path = cfg.dir + "/wk";
            Supervisor sup(wcfg);
            const FleetResult fr = sup.runFleet(reg);
            rep.restarts += sup.stats().worker_restarts;
            // Drain BEFORE joining the clients: an escalated session
            // stops consuming, its client blocks on a full socket, and
            // only closing the connection lets that client fail out.
            listener.drainAndClose();
            for (std::thread &th : clients)
                th.join();

            for (std::size_t s = 0; s < nsess; ++s) {
                const WireClientReport &r = reports[s];
                if (!r.delivered_all)
                    fail("phase W: client " + std::to_string(s) +
                         " failed to deliver its stream (" + r.error +
                         ")");
                rep.wire_torn_frames += r.torn_frames;
                rep.wire_disconnects += r.forced_disconnects;
                rep.wire_duplicates += r.duplicate_batches;
                rep.wire_reorders += r.reordered_batches;
                rep.wire_corrupt_frames += r.corrupted_frames;
                rep.wire_hostile_lengths += r.hostile_lengths;
                rep.wire_reconnects += r.reconnects;
                rep.wire_nacks += r.nacks_received;
                rep.wire_windows_replayed += r.windows_replayed;
            }
            const WireListenerStats ls = listener.stats();
            rep.wire_malformed += ls.wire.totalErrors();
            rep.wire_duplicates_dropped += ls.duplicates_dropped;

            // Bit-identity: sessions arrive in admission (connection
            // race) order, so map each admitted WireSource back to
            // its stream via (tenant id, session key).
            const std::vector<WireSource *> srcs = listener.sources();
            if (srcs.size() != fr.sessions.size()) {
                fail("phase W: admitted source count does not match "
                     "fleet session count");
            } else {
                for (std::size_t i = 0; i < srcs.size(); ++i) {
                    std::size_t tenant = cfg.tenants;
                    for (std::size_t t = 0; t < cfg.tenants; ++t) {
                        if (srcs[i]->tenantId() == tenantId(t)) {
                            tenant = t;
                            break;
                        }
                    }
                    const std::uint64_t key = srcs[i]->sessionKey();
                    if (tenant >= cfg.tenants || key < 1 ||
                        key > spt) {
                        fail("phase W: admitted session has an "
                             "unknown tenant/session key");
                        continue;
                    }
                    const std::size_t s =
                        tenant * spt + std::size_t(key - 1);
                    const ShardResult &r = fr.sessions[i];
                    if (r.escalated) {
                        fail("phase W: wire session " +
                             std::to_string(s) + " escalated");
                        continue;
                    }
                    if (!sameRecords(r.records, serial[s].records) ||
                        !sameReports(r.reports, serial[s].reports)) {
                        fail("phase W: wire session " +
                             std::to_string(s) +
                             " verdicts diverged from the serial "
                             "run");
                        continue;
                    }
                    ++rep.wire_sessions_checked;
                }
            }
        }
    }

    rep.ok = rep.violations.empty();
    return rep;
}

std::string
describe(const ChaosReport &report)
{
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "chaos: %s (%zu violations), fates: %llu kills, %llu hangs, "
        "%llu blocked, %llu throttled, %llu shed, %llu torn bytes, "
        "%llu corrupted; outcomes: %llu restarts, %llu breaker trips, "
        "%llu escalations, %llu decode failures, victim %s, "
        "%zu healthy sessions verified",
        report.ok ? "ok" : "FAILED", report.violations.size(),
        static_cast<unsigned long long>(report.kills),
        static_cast<unsigned long long>(report.hangs),
        static_cast<unsigned long long>(report.blocked_pushes),
        static_cast<unsigned long long>(report.windows_throttled),
        static_cast<unsigned long long>(report.windows_shed),
        static_cast<unsigned long long>(report.torn_bytes),
        static_cast<unsigned long long>(report.corrupted_snapshots),
        static_cast<unsigned long long>(report.restarts),
        static_cast<unsigned long long>(report.breaker_trips),
        static_cast<unsigned long long>(report.escalations),
        static_cast<unsigned long long>(
            report.snapshot_decode_failures),
        report.victim_isolated ? "isolated" : "survived",
        report.healthy_sessions_checked);
    std::string out(buf);
    if (report.wire_sessions_checked > 0 || report.wire_nacks > 0 ||
        report.wire_malformed > 0) {
        std::snprintf(
            buf, sizeof buf,
            "; wire: %llu torn, %llu disconnects, %llu duplicates, "
            "%llu reorders, %llu corrupt, %llu hostile lengths, "
            "%llu reconnects, %llu nacks, %llu replayed, "
            "%llu malformed rejected, %llu duplicate windows "
            "dropped, %zu wire sessions verified",
            static_cast<unsigned long long>(report.wire_torn_frames),
            static_cast<unsigned long long>(report.wire_disconnects),
            static_cast<unsigned long long>(report.wire_duplicates),
            static_cast<unsigned long long>(report.wire_reorders),
            static_cast<unsigned long long>(
                report.wire_corrupt_frames),
            static_cast<unsigned long long>(
                report.wire_hostile_lengths),
            static_cast<unsigned long long>(report.wire_reconnects),
            static_cast<unsigned long long>(report.wire_nacks),
            static_cast<unsigned long long>(
                report.wire_windows_replayed),
            static_cast<unsigned long long>(report.wire_malformed),
            static_cast<unsigned long long>(
                report.wire_duplicates_dropped),
            report.wire_sessions_checked);
        out += buf;
    }
    return out;
}

} // namespace eddie::serve
