#include "modulation.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "filter.h"

namespace eddie::sig
{

std::vector<double>
normalizeEnvelope(const std::vector<double> &x)
{
    if (x.empty())
        return x;
    double mean = 0.0;
    for (double v : x)
        mean += v;
    mean /= double(x.size());

    // Scale by a high percentile of the deviation, not the absolute
    // peak: rare events (DRAM bursts) would otherwise crush the
    // periodic ripple that carries the loop information. Deviations
    // beyond the headroom are soft-clamped, like a real front-end
    // amplifier.
    std::vector<double> dev(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        dev[i] = std::abs(x[i] - mean);
    std::vector<double> sorted(dev);
    const std::size_t idx =
        std::min(sorted.size() - 1,
                 std::size_t(double(sorted.size()) * 0.995));
    std::nth_element(sorted.begin(),
                     sorted.begin() + std::ptrdiff_t(idx),
                     sorted.end());
    const double scale = sorted[idx];

    std::vector<double> y(x.size());
    if (scale <= 0.0) {
        for (auto &v : y)
            v = 0.0;
        return y;
    }
    constexpr double headroom = 1.5;
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = std::clamp((x[i] - mean) / scale, -headroom,
                          headroom);
    }
    return y;
}

std::vector<double>
amModulate(const std::vector<double> &envelope, double envelope_rate,
           const AmConfig &cfg)
{
    if (envelope_rate <= 0.0)
        throw std::invalid_argument("amModulate: bad envelope rate");
    if (cfg.sample_rate <= 2.0 * cfg.carrier_hz)
        throw std::invalid_argument("amModulate: carrier above Nyquist");

    const auto env = normalizeEnvelope(envelope);
    const double duration = double(env.size()) / envelope_rate;
    const std::size_t n = std::size_t(duration * cfg.sample_rate);
    const double w = 2.0 * std::numbers::pi * cfg.carrier_hz;

    std::vector<double> rf(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = double(i) / cfg.sample_rate;
        // Zero-order hold resampling of the envelope.
        std::size_t j = std::size_t(t * envelope_rate);
        if (j >= env.size())
            j = env.size() - 1;
        rf[i] = cfg.amplitude * (1.0 + cfg.depth * env[j]) * std::cos(w * t);
    }
    return rf;
}

std::vector<Complex>
iqDownconvert(const std::vector<double> &rf, const ReceiverConfig &cfg)
{
    if (cfg.sample_rate <= 0.0)
        throw std::invalid_argument("iqDownconvert: bad sample rate");

    const double w = 2.0 * std::numbers::pi * cfg.center_hz;
    std::vector<Complex> iq(rf.size());
    for (std::size_t i = 0; i < rf.size(); ++i) {
        const double t = double(i) / cfg.sample_rate;
        // Multiply by e^{-j w t}; factor 2 recovers unit sideband gain.
        iq[i] = 2.0 * rf[i] *
            Complex(std::cos(w * t), -std::sin(w * t));
    }

    const auto h = designLowPass(cfg.bandwidth_hz, cfg.sample_rate,
                                 cfg.fir_taps);
    auto filtered = firFilter(iq, h);
    return decimate(filtered, cfg.decimation);
}

} // namespace eddie::sig
