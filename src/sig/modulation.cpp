#include "modulation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "filter.h"
#include "oscillator.h"

namespace eddie::sig
{

std::vector<double>
normalizeEnvelope(const std::vector<double> &x)
{
    if (x.empty())
        return x;
    double mean = 0.0;
    for (double v : x)
        mean += v;
    mean /= double(x.size());

    // Scale by a high percentile of the deviation, not the absolute
    // peak: rare events (DRAM bursts) would otherwise crush the
    // periodic ripple that carries the loop information. Deviations
    // beyond the headroom are soft-clamped, like a real front-end
    // amplifier.
    std::vector<double> dev(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        dev[i] = std::abs(x[i] - mean);
    std::vector<double> sorted(dev);
    const std::size_t idx =
        std::min(sorted.size() - 1,
                 std::size_t(double(sorted.size()) * 0.995));
    std::nth_element(sorted.begin(),
                     sorted.begin() + std::ptrdiff_t(idx),
                     sorted.end());
    const double scale = sorted[idx];

    std::vector<double> y(x.size());
    if (scale <= 0.0) {
        for (auto &v : y)
            v = 0.0;
        return y;
    }
    constexpr double headroom = 1.5;
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = std::clamp((x[i] - mean) / scale, -headroom,
                          headroom);
    }
    return y;
}

std::vector<double>
amModulate(const std::vector<double> &envelope, double envelope_rate,
           const AmConfig &cfg)
{
    if (envelope_rate <= 0.0)
        throw std::invalid_argument("amModulate: bad envelope rate");
    if (cfg.sample_rate <= 2.0 * cfg.carrier_hz)
        throw std::invalid_argument("amModulate: carrier above Nyquist");

    const auto env = normalizeEnvelope(envelope);
    const double duration = double(env.size()) / envelope_rate;
    const std::size_t n = std::size_t(duration * cfg.sample_rate);
    if (n == 0 || env.empty())
        return std::vector<double>(n, 0.0);

    // Zero-order-hold resampling via an integer phase accumulator:
    // j advances exactly when i * envelope_rate / sample_rate crosses
    // the next integer (rates quantized to 1e-6 Hz), so there is no
    // per-sample multiply/divide and no float rounding drift on long
    // traces.
    const std::uint64_t env_step =
        std::uint64_t(std::llround(envelope_rate * 1e6));
    const std::uint64_t rf_step =
        std::uint64_t(std::llround(cfg.sample_rate * 1e6));
    const std::size_t j_max = env.size() - 1;
    std::size_t j = 0;
    std::uint64_t acc = 0;

    PhasorOscillator osc(cfg.carrier_hz, cfg.sample_rate);
    std::vector<double> rf(n);
    for (std::size_t i = 0; i < n; ++i) {
        rf[i] = cfg.amplitude * (1.0 + cfg.depth * env[j]) *
            osc.nextCos();
        acc += env_step;
        while (acc >= rf_step) {
            acc -= rf_step;
            if (j < j_max)
                ++j;
        }
    }
    return rf;
}

std::vector<Complex>
iqDownconvert(const std::vector<double> &rf, const ReceiverConfig &cfg)
{
    if (cfg.sample_rate <= 0.0)
        throw std::invalid_argument("iqDownconvert: bad sample rate");

    PhasorOscillator osc(cfg.center_hz, cfg.sample_rate);
    std::vector<Complex> iq(rf.size());
    for (std::size_t i = 0; i < rf.size(); ++i) {
        // Multiply by e^{-j w t}; factor 2 recovers unit sideband gain.
        iq[i] = 2.0 * rf[i] * std::conj(osc.next());
    }

    const auto h = designLowPass(cfg.bandwidth_hz, cfg.sample_rate,
                                 cfg.fir_taps);
    return firDecimate(iq, h, cfg.decimation);
}

} // namespace eddie::sig
