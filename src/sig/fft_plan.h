/**
 * @file
 * Precomputed FFT plans with a process-wide table cache.
 *
 * The free functions in fft.h recompute bit-reversal order and
 * twiddle factors on every call; for the STFT hot loop (thousands of
 * same-size transforms per captured run) that is pure waste. An
 * FftPlan precomputes, per transform size:
 *
 *  - the bit-reversal permutation and a twiddle table (radix-2 sizes);
 *  - the chirp sequence and the FFT of the chirp filter (Bluestein
 *    sizes), turning each transform into two inner FFTs instead of
 *    three plus two table builds;
 *  - for even sizes, the real-input fast path: an N-point transform
 *    of a real signal via one N/2-point complex FFT plus an O(N)
 *    unpack, roughly halving the butterfly work.
 *
 * Tables are immutable and shared through a mutex-protected global
 * cache, so constructing a plan for an already-seen size is cheap
 * (a lock + two scratch allocations). Scratch buffers live in the
 * plan instance: a plan is NOT safe for concurrent use — create one
 * plan per thread (the tables underneath are still shared).
 */

#ifndef EDDIE_SIG_FFT_PLAN_H
#define EDDIE_SIG_FFT_PLAN_H

#include <cstddef>
#include <memory>
#include <vector>

#include "fft.h"

namespace eddie::sig
{

namespace detail
{
struct Radix2Tables;
struct BluesteinTables;
} // namespace detail

/** Reusable transform plan for one size; see file comment. */
class FftPlan
{
  public:
    /** Builds (or fetches from cache) the tables for size @p n. */
    explicit FftPlan(std::size_t n);
    ~FftPlan();

    FftPlan(FftPlan &&) noexcept;
    FftPlan &operator=(FftPlan &&) noexcept;
    FftPlan(const FftPlan &) = delete;
    FftPlan &operator=(const FftPlan &) = delete;

    std::size_t size() const { return n_; }

    /** Unnormalized in-place forward FFT; data.size() must be n. */
    void forward(std::vector<Complex> &data);

    /** In-place inverse FFT normalized by 1/n. */
    void inverse(std::vector<Complex> &data);

    /** True when forwardReal() is available (n even, nonzero). */
    bool hasRealFastPath() const { return n_ != 0 && n_ % 2 == 0; }

    /**
     * Full n-point spectrum of a real signal via one n/2-point
     * complex FFT. @p in must hold n doubles, @p out n bins; the
     * upper half of @p out is filled with the conjugate mirror.
     * Requires hasRealFastPath().
     */
    void forwardReal(const double *in, Complex *out);

  private:
    void transform(Complex *data, bool inverse);
    void ensureRealTables();

    std::size_t n_ = 0;
    std::shared_ptr<const detail::Radix2Tables> radix2_;
    std::shared_ptr<const detail::BluesteinTables> bluestein_;
    std::vector<Complex> work_; // Bluestein convolution scratch

    // Real fast path, built lazily on first forwardReal().
    std::unique_ptr<FftPlan> half_;
    std::vector<Complex> real_twiddle_; // e^{-2 pi i k / n}, k in [0, n/2)
    std::vector<Complex> packed_;       // n/2 packed samples
};

} // namespace eddie::sig

#endif // EDDIE_SIG_FFT_PLAN_H
