/**
 * @file
 * Spectral peak extraction.
 *
 * EDDIE defines a peak as a frequency at which at least a fixed
 * fraction (1 % in the paper) of the window's total signal energy is
 * concentrated (paper Sec. 4.1). We additionally require the bin to be
 * a local maximum so that a single wide lobe does not register as many
 * adjacent peaks.
 */

#ifndef EDDIE_SIG_PEAKS_H
#define EDDIE_SIG_PEAKS_H

#include <cstddef>
#include <vector>

namespace eddie::sig
{

/** One spectral peak. */
struct Peak
{
    /** FFT bin index. */
    std::size_t bin = 0;
    /** Frequency in Hz (may be negative for IQ spectra). */
    double freq = 0.0;
    /** Power at the bin. */
    double power = 0.0;
    /** Fraction of the window's total energy at this bin, in [0,1]. */
    double energy_frac = 0.0;
};

/** Options for peak extraction. */
struct PeakOptions
{
    /** Minimum fraction of total window energy (paper: 1 %). */
    double min_energy_frac = 0.01;
    /** Maximum number of peaks returned (strongest first). 0 = all. */
    std::size_t max_peaks = 0;
    /** Ignore the DC bin (and, for real signals, the Nyquist bin);
     *  the mean power level carries no periodicity information. */
    bool skip_dc = true;
    /**
     * Bins around DC excluded from both the peak search and the
     * total-energy denominator. A physical EM probe is AC-coupled,
     * so the (huge) mean power level never reaches it; without this
     * guard the DC leakage of the analysis window would swamp the
     * 1 %-of-energy rule.
     */
    std::size_t dc_guard_bins = 3;
    /** Neighborhood half-width for the local-maximum requirement. */
    std::size_t neighborhood = 1;
};

/**
 * Extracts peaks from a power spectrum.
 *
 * @param power     per-bin power values
 * @param sample_rate sample rate in Hz (for Peak::freq)
 * @param opt       extraction options
 * @return peaks sorted by descending power (ties by ascending bin)
 */
std::vector<Peak> findPeaks(const std::vector<double> &power,
                            double sample_rate,
                            const PeakOptions &opt = PeakOptions());

} // namespace eddie::sig

#endif // EDDIE_SIG_PEAKS_H
