#include "spectrum.h"

#include <cmath>
#include <numeric>

namespace eddie::sig
{

double
powerToDb(double power, double floor_db)
{
    if (power <= 0.0)
        return floor_db;
    return std::max(10.0 * std::log10(power), floor_db);
}

std::vector<double>
spectrumToDb(const std::vector<double> &power, double floor_db)
{
    std::vector<double> db(power.size());
    for (std::size_t i = 0; i < power.size(); ++i)
        db[i] = powerToDb(power[i], floor_db);
    return db;
}

std::vector<double>
averageSpectrum(const Spectrogram &sg)
{
    std::vector<double> avg;
    if (sg.power.empty())
        return avg;
    avg.assign(sg.fftSize(), 0.0);
    for (const auto &frame : sg.power)
        for (std::size_t i = 0; i < frame.size(); ++i)
            avg[i] += frame[i];
    const double scale = 1.0 / double(sg.numFrames());
    for (auto &v : avg)
        v *= scale;
    return avg;
}

double
totalPower(const std::vector<double> &power)
{
    return std::accumulate(power.begin(), power.end(), 0.0);
}

} // namespace eddie::sig
