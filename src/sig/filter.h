/**
 * @file
 * FIR filter design (windowed sinc) and filtering/decimation.
 *
 * Used by the software receiver to low-pass the mixed-down IQ signal
 * before decimating it to the analysis bandwidth.
 */

#ifndef EDDIE_SIG_FILTER_H
#define EDDIE_SIG_FILTER_H

#include <cstddef>
#include <vector>

#include "fft.h"

namespace eddie::sig
{

/**
 * Designs a linear-phase low-pass FIR via the windowed-sinc method.
 *
 * @param cutoff_hz  -6 dB cutoff frequency
 * @param sample_rate input sample rate in Hz
 * @param taps       number of coefficients (odd values give a
 *                   symmetric type-I filter; even values are rounded
 *                   up)
 */
std::vector<double> designLowPass(double cutoff_hz, double sample_rate,
                                  std::size_t taps);

/** Convolves @p x with @p h; output has the same length as @p x
 *  (group delay compensated, edges zero-padded). */
std::vector<double> firFilter(const std::vector<double> &x,
                              const std::vector<double> &h);

/** Complex-input variant of firFilter(). */
std::vector<Complex> firFilter(const std::vector<Complex> &x,
                               const std::vector<double> &h);

/** Keeps every @p factor-th sample. */
std::vector<double> decimate(const std::vector<double> &x,
                             std::size_t factor);

/** Complex-input variant of decimate(). */
std::vector<Complex> decimate(const std::vector<Complex> &x,
                              std::size_t factor);

/**
 * Fused decimating FIR: bit-identical to
 * `decimate(firFilter(x, h), factor)` but computes only the kept
 * outputs (1/factor of the work) and runs the interior — where every
 * tap is in range — through a branch-free loop. This is the hot
 * kernel of the IQ receiver.
 */
std::vector<double> firDecimate(const std::vector<double> &x,
                                const std::vector<double> &h,
                                std::size_t factor);

/** Complex-input variant of firDecimate(). */
std::vector<Complex> firDecimate(const std::vector<Complex> &x,
                                 const std::vector<double> &h,
                                 std::size_t factor);

} // namespace eddie::sig

#endif // EDDIE_SIG_FILTER_H
