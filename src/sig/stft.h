/**
 * @file
 * Short-Term Fourier Transform producing a sequence of power spectra.
 *
 * EDDIE's training and monitoring both operate on the sequence of
 * Short-Term Spectra (STSs) produced here (paper Sec. 3).
 */

#ifndef EDDIE_SIG_STFT_H
#define EDDIE_SIG_STFT_H

#include <cstddef>
#include <vector>

#include "fft.h"
#include "fft_plan.h"
#include "window.h"

namespace eddie::sig
{

/** STFT configuration. */
struct StftConfig
{
    /** Samples per analysis window. */
    std::size_t window_size = 1024;
    /** Hop between consecutive windows, in samples (50 % overlap when
     *  hop == window_size / 2, as in the paper's setup). */
    std::size_t hop = 512;
    /** Analysis window shape. */
    WindowType window = WindowType::Hann;
    /** Input sample rate in Hz; propagated to the spectrogram. */
    double sample_rate = 1.0;
};

/**
 * A time-frequency power map: one power spectrum per analysis frame.
 *
 * For complex (IQ) input the bin layout follows the DFT convention
 * (bins above n/2 are negative frequencies); use binFrequency() to
 * translate.
 */
struct Spectrogram
{
    /** Power per (frame, bin); power[f].size() == fftSize(). */
    std::vector<std::vector<double>> power;
    /** Start time of each frame, in seconds. */
    std::vector<double> frame_time;
    /** Sample rate of the analyzed signal, Hz. */
    double sample_rate = 1.0;
    /** Duration of each analysis window, seconds. */
    double window_seconds = 0.0;
    /** Hop between frames, seconds. */
    double hop_seconds = 0.0;

    std::size_t numFrames() const { return power.size(); }
    std::size_t fftSize() const
    {
        return power.empty() ? 0 : power.front().size();
    }
    /** Frequency of a bin in Hz (negative for upper-half bins). */
    double binFrequency(std::size_t bin) const
    {
        return binToFrequency(bin, fftSize(), sample_rate);
    }
};

/**
 * Computes STFTs over real or complex signals.
 *
 * Holds a cached FFT plan plus per-frame scratch buffers, so the
 * analysis loop performs no allocations beyond the output rows.
 * Real input uses the plan's real fast path (one half-size complex
 * FFT per frame) for even window sizes.
 *
 * Reusable across signals, but NOT safe for concurrent use from
 * multiple threads (the scratch is shared state); construct one Stft
 * per thread — construction is cheap because the FFT tables come
 * from the process-wide plan cache.
 */
class Stft
{
  public:
    explicit Stft(const StftConfig &config);

    /** STFT of a real signal. */
    Spectrogram analyze(const std::vector<double> &signal) const;

    /** STFT of a complex (IQ) signal. */
    Spectrogram analyze(const std::vector<Complex> &signal) const;

    const StftConfig &config() const { return config_; }

  private:
    Spectrogram emptySpectrogram() const;
    std::size_t frameCount(std::size_t samples) const;

    StftConfig config_;
    std::vector<double> window_;
    // Scratch reused across frames; mutable because analysis is
    // logically const (see the thread-safety note above).
    mutable FftPlan plan_;
    mutable std::vector<double> real_frame_;
    mutable std::vector<Complex> complex_frame_;
    mutable std::vector<Complex> spectrum_;
};

} // namespace eddie::sig

#endif // EDDIE_SIG_STFT_H
