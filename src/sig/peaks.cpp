#include "peaks.h"

#include <algorithm>
#include <numeric>

#include "fft.h"

namespace eddie::sig
{

std::vector<Peak>
findPeaks(const std::vector<double> &power, double sample_rate,
          const PeakOptions &opt)
{
    std::vector<Peak> peaks;
    const std::size_t n = power.size();
    if (n == 0)
        return peaks;

    // Bins within the DC guard (circularly, covering negative
    // frequencies too) are invisible to an AC-coupled probe:
    // bin i is guarded when min(i, n - i) < guard.
    const std::size_t guard = opt.skip_dc ?
        std::max<std::size_t>(opt.dc_guard_bins, 1) : 0;
    auto is_guarded = [&](std::size_t i) {
        return guard > 0 && std::min(i, n - i) < guard;
    };

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        if (!is_guarded(i))
            total += power[i];
    if (total <= 0.0)
        return peaks;

    const std::size_t hw = std::max<std::size_t>(opt.neighborhood, 1);
    for (std::size_t i = 0; i < n; ++i) {
        if (is_guarded(i))
            continue;
        const double frac = power[i] / total;
        if (frac < opt.min_energy_frac)
            continue;

        // Local maximum within +-hw bins (circular for IQ spectra).
        bool is_max = true;
        for (std::size_t d = 1; d <= hw && is_max; ++d) {
            const std::size_t lo = (i + n - d) % n;
            const std::size_t hi = (i + d) % n;
            if (power[lo] > power[i] || power[hi] > power[i])
                is_max = false;
        }
        if (!is_max)
            continue;

        Peak p;
        p.bin = i;
        p.freq = binToFrequency(i, n, sample_rate);
        p.power = power[i];
        p.energy_frac = frac;
        peaks.push_back(p);
    }

    // Strict weak order with a bin tiebreak: equal-power peaks (which
    // the synthetic spectra do produce) get a defined order, so the
    // top-k selection below keeps the same set a full sort would.
    const auto stronger = [](const Peak &a, const Peak &b) {
        if (a.power != b.power)
            return a.power > b.power;
        return a.bin < b.bin;
    };
    if (opt.max_peaks > 0 && peaks.size() > opt.max_peaks) {
        // Top-k selection: every STFT frame funnels through here, and
        // candidate counts can dwarf max_peaks, so partition to the
        // k-th element first and only sort the survivors.
        std::nth_element(peaks.begin(),
                         peaks.begin() +
                             std::ptrdiff_t(opt.max_peaks),
                         peaks.end(), stronger);
        peaks.resize(opt.max_peaks);
    }
    std::sort(peaks.begin(), peaks.end(), stronger);
    return peaks;
}

} // namespace eddie::sig
