#include "oscillator.h"

#include <cmath>
#include <numbers>

namespace eddie::sig
{

PhasorOscillator::PhasorOscillator(double freq_hz, double sample_rate,
                                   double phase0)
    : w_(2.0 * std::numbers::pi * freq_hz), sample_rate_(sample_rate),
      phase0_(phase0)
{
    const double step = w_ / sample_rate_;
    rot_re_ = std::cos(step);
    rot_im_ = std::sin(step);
    anchor();
}

void
PhasorOscillator::anchor()
{
    // Same expression as the trig reference cos(w * t + p0) with
    // t = i / fs, so anchor samples match it to the last rounding.
    const double t = double(index_) / sample_rate_;
    const double ph = w_ * t + phase0_;
    re_ = std::cos(ph);
    im_ = std::sin(ph);
}

} // namespace eddie::sig
