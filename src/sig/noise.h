/**
 * @file
 * Noise and interference sources for the EM channel model.
 */

#ifndef EDDIE_SIG_NOISE_H
#define EDDIE_SIG_NOISE_H

#include <cstdint>
#include <random>
#include <vector>

#include "fft.h"

namespace eddie::sig
{

/**
 * Fills dst[0..n) with independent standard-normal samples via the
 * Marsaglia–Tsang ziggurat (128 layers): ~98.8% of samples cost one
 * 32-bit draw, a table compare, and one multiply — no transcendentals
 * on the common path, unlike Box–Muller's (log, sqrt, cos, sin) per
 * pair or std::normal_distribution's polar rejection. The wedge and
 * tail corrections (exp/log) run on the remaining ~1.2%. Each 64-bit
 * RNG draw feeds two samples; deterministic given the RNG state (the
 * exact sequence is a function of the algorithm, so it differs from
 * the previous Box–Muller one — nothing persists raw noise, only
 * statistics, so seeds keep meaning "same run").
 */
void gaussianBlock(std::mt19937_64 &rng, double *dst, std::size_t n);

/**
 * Additive white Gaussian noise generator plus narrowband (radio)
 * interference tones, as seen by a near-field probe.
 */
class NoiseSource
{
  public:
    explicit NoiseSource(std::uint64_t seed = 0x5eed);

    /** Adds AWGN so the result has the given SNR relative to the
     *  current signal power. No-op on empty or all-zero input. */
    void addAwgn(std::vector<double> &signal, double snr_db);

    /** Complex-signal variant of addAwgn(). */
    void addAwgn(std::vector<Complex> &signal, double snr_db);

    /**
     * Adds a constant-amplitude interference tone (e.g. a nearby
     * radio carrier) at @p freq_hz.
     *
     * @param amplitude absolute tone amplitude
     */
    void addTone(std::vector<double> &signal, double freq_hz,
                 double sample_rate, double amplitude);

    /** Complex-signal variant of addTone(); adds e^{j 2 pi f t}. */
    void addTone(std::vector<Complex> &signal, double freq_hz,
                 double sample_rate, double amplitude);

  private:
    double signalPower(const std::vector<double> &x) const;
    double signalPower(const std::vector<Complex> &x) const;

    std::mt19937_64 rng_;
};

} // namespace eddie::sig

#endif // EDDIE_SIG_NOISE_H
