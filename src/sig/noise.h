/**
 * @file
 * Noise and interference sources for the EM channel model.
 */

#ifndef EDDIE_SIG_NOISE_H
#define EDDIE_SIG_NOISE_H

#include <cstdint>
#include <random>
#include <vector>

#include "fft.h"

namespace eddie::sig
{

/**
 * Fills dst[0..n) with independent standard-normal samples via a
 * blocked Box-Muller transform: raw 64-bit draws are mapped straight
 * to (0,1] / [0,1) uniforms and each (log, sqrt, cos, sin) group
 * yields two outputs, with no rejection loop — unlike
 * std::normal_distribution's polar method this does a fixed amount of
 * work per sample, which is what makes it fast at passband rates.
 * Deterministic given the RNG state.
 */
void gaussianBlock(std::mt19937_64 &rng, double *dst, std::size_t n);

/**
 * Additive white Gaussian noise generator plus narrowband (radio)
 * interference tones, as seen by a near-field probe.
 */
class NoiseSource
{
  public:
    explicit NoiseSource(std::uint64_t seed = 0x5eed);

    /** Adds AWGN so the result has the given SNR relative to the
     *  current signal power. No-op on empty or all-zero input. */
    void addAwgn(std::vector<double> &signal, double snr_db);

    /** Complex-signal variant of addAwgn(). */
    void addAwgn(std::vector<Complex> &signal, double snr_db);

    /**
     * Adds a constant-amplitude interference tone (e.g. a nearby
     * radio carrier) at @p freq_hz.
     *
     * @param amplitude absolute tone amplitude
     */
    void addTone(std::vector<double> &signal, double freq_hz,
                 double sample_rate, double amplitude);

    /** Complex-signal variant of addTone(); adds e^{j 2 pi f t}. */
    void addTone(std::vector<Complex> &signal, double freq_hz,
                 double sample_rate, double amplitude);

  private:
    double signalPower(const std::vector<double> &x) const;
    double signalPower(const std::vector<Complex> &x) const;

    std::mt19937_64 rng_;
};

} // namespace eddie::sig

#endif // EDDIE_SIG_NOISE_H
