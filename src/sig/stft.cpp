#include "stft.h"

#include <stdexcept>

namespace eddie::sig
{

Stft::Stft(const StftConfig &config)
    : config_(config),
      window_(makeWindow(config.window, config.window_size))
{
    if (config_.window_size == 0)
        throw std::invalid_argument("Stft: window_size must be > 0");
    if (config_.hop == 0)
        throw std::invalid_argument("Stft: hop must be > 0");
    if (config_.sample_rate <= 0.0)
        throw std::invalid_argument("Stft: sample_rate must be > 0");
}

Spectrogram
Stft::analyze(const std::vector<double> &signal) const
{
    std::vector<Complex> c(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        c[i] = Complex(signal[i], 0.0);
    return analyzeFrames(c);
}

Spectrogram
Stft::analyze(const std::vector<Complex> &signal) const
{
    return analyzeFrames(signal);
}

Spectrogram
Stft::analyzeFrames(const std::vector<Complex> &signal) const
{
    Spectrogram out;
    out.sample_rate = config_.sample_rate;
    out.window_seconds = double(config_.window_size) / config_.sample_rate;
    out.hop_seconds = double(config_.hop) / config_.sample_rate;

    const std::size_t n = config_.window_size;
    if (signal.size() < n)
        return out;

    const std::size_t frames = 1 + (signal.size() - n) / config_.hop;
    out.power.reserve(frames);
    out.frame_time.reserve(frames);

    std::vector<Complex> buf(n);
    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t start = f * config_.hop;
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = signal[start + i] * window_[i];
        fft(buf);

        std::vector<double> pw(n);
        for (std::size_t i = 0; i < n; ++i)
            pw[i] = std::norm(buf[i]);
        out.power.push_back(std::move(pw));
        out.frame_time.push_back(double(start) / config_.sample_rate);
    }
    return out;
}

} // namespace eddie::sig
