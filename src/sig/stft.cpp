#include "stft.h"

#include <stdexcept>

namespace eddie::sig
{

Stft::Stft(const StftConfig &config)
    : config_(config),
      window_(makeWindow(config.window, config.window_size)),
      plan_(config.window_size)
{
    if (config_.window_size == 0)
        throw std::invalid_argument("Stft: window_size must be > 0");
    if (config_.hop == 0)
        throw std::invalid_argument("Stft: hop must be > 0");
    if (config_.sample_rate <= 0.0)
        throw std::invalid_argument("Stft: sample_rate must be > 0");
    const std::size_t n = config_.window_size;
    if (plan_.hasRealFastPath())
        real_frame_.resize(n);
    complex_frame_.resize(n);
    spectrum_.resize(n);
}

Spectrogram
Stft::emptySpectrogram() const
{
    Spectrogram out;
    out.sample_rate = config_.sample_rate;
    out.window_seconds = double(config_.window_size) /
        config_.sample_rate;
    out.hop_seconds = double(config_.hop) / config_.sample_rate;
    return out;
}

std::size_t
Stft::frameCount(std::size_t samples) const
{
    if (samples < config_.window_size)
        return 0;
    return 1 + (samples - config_.window_size) / config_.hop;
}

Spectrogram
Stft::analyze(const std::vector<double> &signal) const
{
    if (!plan_.hasRealFastPath()) {
        // Odd window size: no packed half-size transform; go through
        // the complex path.
        std::vector<Complex> c(signal.size());
        for (std::size_t i = 0; i < signal.size(); ++i)
            c[i] = Complex(signal[i], 0.0);
        return analyze(c);
    }

    Spectrogram out = emptySpectrogram();
    const std::size_t n = config_.window_size;
    const std::size_t frames = frameCount(signal.size());
    out.power.reserve(frames);
    out.frame_time.reserve(frames);

    const std::size_t half = n / 2;
    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t start = f * config_.hop;
        for (std::size_t i = 0; i < n; ++i)
            real_frame_[i] = signal[start + i] * window_[i];
        plan_.forwardReal(real_frame_.data(), spectrum_.data());

        auto &pw = out.power.emplace_back(n);
        // Real input: the upper half mirrors the lower, so norm only
        // half the bins.
        pw[0] = std::norm(spectrum_[0]);
        pw[half] = std::norm(spectrum_[half]);
        for (std::size_t i = 1; i < half; ++i) {
            const double v = std::norm(spectrum_[i]);
            pw[i] = v;
            pw[n - i] = v;
        }
        out.frame_time.push_back(double(start) / config_.sample_rate);
    }
    return out;
}

Spectrogram
Stft::analyze(const std::vector<Complex> &signal) const
{
    Spectrogram out = emptySpectrogram();
    const std::size_t n = config_.window_size;
    const std::size_t frames = frameCount(signal.size());
    out.power.reserve(frames);
    out.frame_time.reserve(frames);

    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t start = f * config_.hop;
        for (std::size_t i = 0; i < n; ++i)
            complex_frame_[i] = signal[start + i] * window_[i];
        plan_.forward(complex_frame_);

        auto &pw = out.power.emplace_back(n);
        for (std::size_t i = 0; i < n; ++i)
            pw[i] = std::norm(complex_frame_[i]);
        out.frame_time.push_back(double(start) / config_.sample_rate);
    }
    return out;
}

} // namespace eddie::sig
