#include "filter.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "window.h"

namespace eddie::sig
{

std::vector<double>
designLowPass(double cutoff_hz, double sample_rate, std::size_t taps)
{
    if (sample_rate <= 0.0)
        throw std::invalid_argument("designLowPass: bad sample rate");
    if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate / 2.0)
        throw std::invalid_argument("designLowPass: bad cutoff");
    if (taps % 2 == 0)
        ++taps;
    if (taps < 3)
        taps = 3;

    const double fc = cutoff_hz / sample_rate; // normalized (cycles/sample)
    const std::ptrdiff_t mid = std::ptrdiff_t(taps / 2);
    std::vector<double> h(taps);
    const auto win = makeWindow(WindowType::Hamming, taps);

    double sum = 0.0;
    for (std::size_t i = 0; i < taps; ++i) {
        const double m = double(std::ptrdiff_t(i) - mid);
        double v;
        if (m == 0.0) {
            v = 2.0 * fc;
        } else {
            const double x = 2.0 * std::numbers::pi * fc * m;
            v = std::sin(x) / (std::numbers::pi * m);
        }
        h[i] = v * win[i];
        sum += h[i];
    }
    // Normalize to unity DC gain.
    for (auto &v : h)
        v /= sum;
    return h;
}

namespace
{

template <typename T>
std::vector<T>
firFilterImpl(const std::vector<T> &x, const std::vector<double> &h)
{
    const std::size_t n = x.size();
    const std::size_t m = h.size();
    std::vector<T> y(n, T{});
    if (n == 0 || m == 0)
        return y;
    const std::ptrdiff_t delay = std::ptrdiff_t(m / 2);
    for (std::size_t i = 0; i < n; ++i) {
        T acc{};
        // y[i] = sum_k h[k] * x[i + delay - k]
        for (std::size_t k = 0; k < m; ++k) {
            const std::ptrdiff_t j =
                std::ptrdiff_t(i) + delay - std::ptrdiff_t(k);
            if (j >= 0 && j < std::ptrdiff_t(n))
                acc += x[std::size_t(j)] * h[k];
        }
        y[i] = acc;
    }
    return y;
}

template <typename T>
std::vector<T>
firDecimateImpl(const std::vector<T> &x, const std::vector<double> &h,
                std::size_t factor)
{
    if (factor == 0)
        throw std::invalid_argument("firDecimate: factor must be > 0");
    const std::size_t n = x.size();
    const std::size_t m = h.size();
    const std::size_t out_n = n == 0 ? 0 : (n - 1) / factor + 1;
    std::vector<T> y(out_n, T{});
    if (n == 0 || m == 0)
        return y;

    const std::ptrdiff_t delay = std::ptrdiff_t(m / 2);
    for (std::size_t o = 0; o < out_n; ++o) {
        const std::ptrdiff_t i = std::ptrdiff_t(o * factor);
        // Taps k touch x[i + delay - k]; the edge loops guard each
        // access, the interior loop accumulates the same terms in
        // the same order without the guard (bit-identical result).
        const std::ptrdiff_t first = i + delay; // k = 0
        const std::ptrdiff_t last =
            i + delay - std::ptrdiff_t(m) + 1; // k = m - 1
        T acc{};
        if (last >= 0 && first < std::ptrdiff_t(n)) {
            const T *xp = x.data() + first;
            for (std::size_t k = 0; k < m; ++k)
                acc += xp[-std::ptrdiff_t(k)] * h[k];
        } else {
            for (std::size_t k = 0; k < m; ++k) {
                const std::ptrdiff_t j = i + delay - std::ptrdiff_t(k);
                if (j >= 0 && j < std::ptrdiff_t(n))
                    acc += x[std::size_t(j)] * h[k];
            }
        }
        y[o] = acc;
    }
    return y;
}

template <typename T>
std::vector<T>
decimateImpl(const std::vector<T> &x, std::size_t factor)
{
    if (factor == 0)
        throw std::invalid_argument("decimate: factor must be > 0");
    std::vector<T> y;
    y.reserve(x.size() / factor + 1);
    for (std::size_t i = 0; i < x.size(); i += factor)
        y.push_back(x[i]);
    return y;
}

} // namespace

std::vector<double>
firFilter(const std::vector<double> &x, const std::vector<double> &h)
{
    return firFilterImpl(x, h);
}

std::vector<Complex>
firFilter(const std::vector<Complex> &x, const std::vector<double> &h)
{
    return firFilterImpl(x, h);
}

std::vector<double>
decimate(const std::vector<double> &x, std::size_t factor)
{
    return decimateImpl(x, factor);
}

std::vector<Complex>
decimate(const std::vector<Complex> &x, std::size_t factor)
{
    return decimateImpl(x, factor);
}

std::vector<double>
firDecimate(const std::vector<double> &x, const std::vector<double> &h,
            std::size_t factor)
{
    return firDecimateImpl(x, h, factor);
}

std::vector<Complex>
firDecimate(const std::vector<Complex> &x, const std::vector<double> &h,
            std::size_t factor)
{
    return firDecimateImpl(x, h, factor);
}

} // namespace eddie::sig
