/**
 * @file
 * Amplitude modulation and IQ downconversion.
 *
 * Models the physical mechanism EDDIE exploits (paper Sec. 2): program
 * activity amplitude-modulates the processor clock, producing sidebands
 * at Fclock +- 1/T for loop period T. The modulator turns a baseband
 * activity envelope into a passband signal; the receiver mixes it back
 * to complex baseband the way an SDR front end would.
 */

#ifndef EDDIE_SIG_MODULATION_H
#define EDDIE_SIG_MODULATION_H

#include <cstddef>
#include <vector>

#include "fft.h"

namespace eddie::sig
{

/** Parameters of the AM modulator. */
struct AmConfig
{
    /** Carrier ("processor clock") frequency, Hz. */
    double carrier_hz = 10e6;
    /** Output (RF) sample rate, Hz; must be > 2 * carrier_hz. */
    double sample_rate = 40e6;
    /** Modulation depth applied to the normalized envelope. */
    double depth = 0.5;
    /** Carrier amplitude. */
    double amplitude = 1.0;
};

/**
 * Amplitude-modulates a baseband envelope onto a carrier.
 *
 * The envelope is resampled (zero-order hold) from its own rate to the
 * RF rate, normalized to zero mean / unit peak, then
 * s(t) = A * (1 + depth * env(t)) * cos(2 pi fc t).
 *
 * @param envelope      baseband activity signal
 * @param envelope_rate sample rate of @p envelope, Hz
 */
std::vector<double> amModulate(const std::vector<double> &envelope,
                               double envelope_rate, const AmConfig &cfg);

/** Parameters of the IQ receiver. */
struct ReceiverConfig
{
    /** Tuned center frequency, Hz (normally the clock carrier). */
    double center_hz = 10e6;
    /** Input (RF) sample rate, Hz. */
    double sample_rate = 40e6;
    /** One-sided analysis bandwidth after downconversion, Hz. */
    double bandwidth_hz = 4e6;
    /** Low-pass filter length. */
    std::size_t fir_taps = 127;
    /** Decimation factor applied after filtering. */
    std::size_t decimation = 4;
};

/**
 * Mixes a real passband signal to complex baseband, low-passes and
 * decimates it.
 *
 * @return IQ samples at sample_rate / decimation.
 */
std::vector<Complex> iqDownconvert(const std::vector<double> &rf,
                                   const ReceiverConfig &cfg);

/**
 * Normalizes a signal to zero mean and unit peak magnitude; returns
 * the input unchanged when it is constant.
 */
std::vector<double> normalizeEnvelope(const std::vector<double> &x);

} // namespace eddie::sig

#endif // EDDIE_SIG_MODULATION_H
