#include "noise.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "oscillator.h"

namespace eddie::sig
{

namespace
{

/** Block size for AWGN generation: large enough to amortize the loop
 *  setup, small enough to stay in L1. */
constexpr std::size_t kAwgnBlock = 4096;

/** Maps a raw 64-bit draw to a uniform in [0, 1) with 53 bits. */
inline double
toUnit(std::uint64_t bits)
{
    return double(bits >> 11) * 0x1.0p-53;
}

} // namespace

void
gaussianBlock(std::mt19937_64 &rng, double *dst, std::size_t n)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    std::size_t i = 0;
    for (; i + 1 < n; i += 2) {
        // 1 - u keeps u1 in (0, 1] so the log is finite.
        const double u1 = 1.0 - toUnit(rng());
        const double u2 = toUnit(rng());
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double a = two_pi * u2;
        dst[i] = r * std::cos(a);
        dst[i + 1] = r * std::sin(a);
    }
    if (i < n) {
        const double u1 = 1.0 - toUnit(rng());
        const double u2 = toUnit(rng());
        const double r = std::sqrt(-2.0 * std::log(u1));
        dst[i] = r * std::cos(two_pi * u2);
    }
}

NoiseSource::NoiseSource(std::uint64_t seed) : rng_(seed)
{
}

double
NoiseSource::signalPower(const std::vector<double> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (double v : x)
        p += v * v;
    return p / double(x.size());
}

double
NoiseSource::signalPower(const std::vector<Complex> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (const auto &v : x)
        p += std::norm(v);
    return p / double(x.size());
}

void
NoiseSource::addAwgn(std::vector<double> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn);
    double block[kAwgnBlock];
    for (std::size_t base = 0; base < signal.size();
         base += kAwgnBlock) {
        const std::size_t len =
            std::min(kAwgnBlock, signal.size() - base);
        gaussianBlock(rng_, block, len);
        for (std::size_t i = 0; i < len; ++i)
            signal[base + i] += sigma * block[i];
    }
}

void
NoiseSource::addAwgn(std::vector<Complex> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn / 2.0); // split across I and Q
    double block[kAwgnBlock];
    for (std::size_t base = 0; base < signal.size();
         base += kAwgnBlock / 2) {
        const std::size_t len =
            std::min(kAwgnBlock / 2, signal.size() - base);
        gaussianBlock(rng_, block, 2 * len);
        for (std::size_t i = 0; i < len; ++i) {
            signal[base + i] += Complex(sigma * block[2 * i],
                                        sigma * block[2 * i + 1]);
        }
    }
}

void
NoiseSource::addTone(std::vector<double> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    PhasorOscillator osc(freq_hz, sample_rate, phase(rng_));
    for (auto &v : signal)
        v += amplitude * osc.nextCos();
}

void
NoiseSource::addTone(std::vector<Complex> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    PhasorOscillator osc(freq_hz, sample_rate, phase(rng_));
    for (auto &v : signal)
        v += amplitude * osc.next();
}

} // namespace eddie::sig
