#include "noise.h"

#include <cmath>
#include <numbers>

namespace eddie::sig
{

NoiseSource::NoiseSource(std::uint64_t seed) : rng_(seed)
{
}

double
NoiseSource::signalPower(const std::vector<double> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (double v : x)
        p += v * v;
    return p / double(x.size());
}

double
NoiseSource::signalPower(const std::vector<Complex> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (const auto &v : x)
        p += std::norm(v);
    return p / double(x.size());
}

void
NoiseSource::addAwgn(std::vector<double> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn);
    for (auto &v : signal)
        v += sigma * gauss_(rng_);
}

void
NoiseSource::addAwgn(std::vector<Complex> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn / 2.0); // split across I and Q
    for (auto &v : signal)
        v += Complex(sigma * gauss_(rng_), sigma * gauss_(rng_));
}

void
NoiseSource::addTone(std::vector<double> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    const double w = 2.0 * std::numbers::pi * freq_hz;
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    const double p0 = phase(rng_);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        const double t = double(i) / sample_rate;
        signal[i] += amplitude * std::cos(w * t + p0);
    }
}

void
NoiseSource::addTone(std::vector<Complex> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    const double w = 2.0 * std::numbers::pi * freq_hz;
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    const double p0 = phase(rng_);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        const double t = double(i) / sample_rate;
        signal[i] += amplitude *
            Complex(std::cos(w * t + p0), std::sin(w * t + p0));
    }
}

} // namespace eddie::sig
