#include "noise.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "oscillator.h"

namespace eddie::sig
{

namespace
{

/** Block size for AWGN generation: large enough to amortize the loop
 *  setup, small enough to stay in L1. */
constexpr std::size_t kAwgnBlock = 4096;

/** Maps a raw 64-bit draw to a uniform in [0, 1) with 53 bits. */
inline double
toUnit(std::uint64_t bits)
{
    return double(bits >> 11) * 0x1.0p-53;
}

/** Ziggurat layer boundary where the tail algorithm takes over. */
constexpr double kZigR = 3.442619855899;

/**
 * Marsaglia–Tsang ziggurat tables for the standard normal, 128
 * layers of equal area vn. kn[i] is the acceptance threshold for a
 * 31-bit magnitude (accept ⇒ the draw scaled by wn[i] lies strictly
 * inside layer i), fn[i] = exp(-x_i^2/2) for the wedge test.
 */
struct ZigTables
{
    std::uint32_t kn[128];
    double wn[128];
    double fn[128];

    ZigTables()
    {
        const double m1 = 2147483648.0; // 2^31
        const double vn = 9.91256303526217e-3;
        double dn = kZigR;
        double tn = dn;
        const double q = vn / std::exp(-0.5 * dn * dn);
        kn[0] = std::uint32_t((dn / q) * m1);
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fn[0] = 1.0;
        fn[127] = std::exp(-0.5 * dn * dn);
        for (int i = 126; i >= 1; --i) {
            dn = std::sqrt(
                -2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
            kn[i + 1] = std::uint32_t((dn / tn) * m1);
            tn = dn;
            fn[i] = std::exp(-0.5 * dn * dn);
            wn[i] = dn / m1;
        }
    }
};

const ZigTables &
zigTables()
{
    static const ZigTables tables;
    return tables;
}

} // namespace

void
gaussianBlock(std::mt19937_64 &rng, double *dst, std::size_t n)
{
    const ZigTables &t = zigTables();
    // One 64-bit draw feeds two 32-bit ziggurat samples; the spare
    // half lives only within this call, keeping the function a pure
    // function of the RNG state.
    std::uint64_t bits = 0;
    bool have_spare = false;
    const auto next32 = [&]() -> std::uint32_t {
        if (have_spare) {
            have_spare = false;
            return std::uint32_t(bits >> 32);
        }
        bits = rng();
        have_spare = true;
        return std::uint32_t(bits);
    };
    // 1 - u keeps the uniform in (0, 1] so the logs are finite.
    const auto uni = [&]() { return 1.0 - toUnit(rng()); };

    for (std::size_t i = 0; i < n; ++i) {
        for (;;) {
            const std::uint32_t u = next32();
            const std::int32_t hz = std::int32_t(u);
            const std::size_t iz = u & 127;
            // Two's-complement magnitude; 0u - u is correct for
            // INT32_MIN too, where std::abs would be UB.
            const std::uint32_t mag = hz < 0 ? 0u - u : u;
            if (mag < t.kn[iz]) { // ~98.8%: one multiply, done
                dst[i] = double(hz) * t.wn[iz];
                break;
            }
            if (iz == 0) {
                // Base layer: sample the tail beyond kZigR via
                // Marsaglia's exponential-majorant rejection.
                double x;
                double y;
                do {
                    x = -std::log(uni()) / kZigR;
                    y = -std::log(uni());
                } while (y + y < x * x);
                dst[i] = hz < 0 ? -(kZigR + x) : kZigR + x;
                break;
            }
            // Wedge between layer iz and its inscribed rectangle.
            const double x = double(hz) * t.wn[iz];
            if (t.fn[iz] + uni() * (t.fn[iz - 1] - t.fn[iz]) <
                std::exp(-0.5 * x * x)) {
                dst[i] = x;
                break;
            }
            // Rejected: redraw from scratch.
        }
    }
}

NoiseSource::NoiseSource(std::uint64_t seed) : rng_(seed)
{
}

double
NoiseSource::signalPower(const std::vector<double> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (double v : x)
        p += v * v;
    return p / double(x.size());
}

double
NoiseSource::signalPower(const std::vector<Complex> &x) const
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (const auto &v : x)
        p += std::norm(v);
    return p / double(x.size());
}

void
NoiseSource::addAwgn(std::vector<double> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn);
    double block[kAwgnBlock];
    for (std::size_t base = 0; base < signal.size();
         base += kAwgnBlock) {
        const std::size_t len =
            std::min(kAwgnBlock, signal.size() - base);
        gaussianBlock(rng_, block, len);
        for (std::size_t i = 0; i < len; ++i)
            signal[base + i] += sigma * block[i];
    }
}

void
NoiseSource::addAwgn(std::vector<Complex> &signal, double snr_db)
{
    const double ps = signalPower(signal);
    if (ps <= 0.0)
        return;
    const double pn = ps / std::pow(10.0, snr_db / 10.0);
    const double sigma = std::sqrt(pn / 2.0); // split across I and Q
    double block[kAwgnBlock];
    for (std::size_t base = 0; base < signal.size();
         base += kAwgnBlock / 2) {
        const std::size_t len =
            std::min(kAwgnBlock / 2, signal.size() - base);
        gaussianBlock(rng_, block, 2 * len);
        for (std::size_t i = 0; i < len; ++i) {
            signal[base + i] += Complex(sigma * block[2 * i],
                                        sigma * block[2 * i + 1]);
        }
    }
}

void
NoiseSource::addTone(std::vector<double> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    PhasorOscillator osc(freq_hz, sample_rate, phase(rng_));
    for (auto &v : signal)
        v += amplitude * osc.nextCos();
}

void
NoiseSource::addTone(std::vector<Complex> &signal, double freq_hz,
                     double sample_rate, double amplitude)
{
    std::uniform_real_distribution<double> phase(0.0,
                                                 2.0 * std::numbers::pi);
    PhasorOscillator osc(freq_hz, sample_rate, phase(rng_));
    for (auto &v : signal)
        v += amplitude * osc.next();
}

} // namespace eddie::sig
