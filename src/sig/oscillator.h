/**
 * @file
 * Phasor-recurrence oscillator: the strength-reduced core of every
 * signal-synthesis kernel (AM modulator, IQ mixer, interference
 * tones).
 *
 * Evaluating cos/sin per sample costs two libm calls; the phasor form
 * replaces them with one complex multiply per sample,
 *   z[i+1] = z[i] * e^{j w / fs},
 * and re-anchors z from libm trig every kResyncInterval samples so
 * rounding error neither accumulates in phase nor in magnitude (the
 * re-anchor is also the renormalization). Between anchors the drift
 * is bounded by kResyncInterval multiplies, a few 1e-13 in practice;
 * the equivalence tests in tests/sig/kernels_test.cpp hold it to
 * 1e-9 against the direct trig evaluation over a full second of
 * samples.
 */

#ifndef EDDIE_SIG_OSCILLATOR_H
#define EDDIE_SIG_OSCILLATOR_H

#include <cstddef>
#include <cstdint>

#include "fft.h"

namespace eddie::sig
{

/**
 * Generates e^{j (2 pi f t_i + phase0)} for t_i = i / sample_rate,
 * one sample per next() call.
 */
class PhasorOscillator
{
  public:
    /** Samples between trig re-anchors (power of two). */
    static constexpr std::uint64_t kResyncInterval = 256;

    PhasorOscillator(double freq_hz, double sample_rate,
                     double phase0 = 0.0);

    /** Current sample e^{j (w t_i + p0)}; advances to i+1. */
    Complex next()
    {
        const Complex v(re_, im_);
        ++index_;
        if ((index_ & (kResyncInterval - 1)) == 0) {
            anchor();
        } else {
            const double re = re_ * rot_re_ - im_ * rot_im_;
            const double im = re_ * rot_im_ + im_ * rot_re_;
            re_ = re;
            im_ = im;
        }
        return v;
    }

    /** Real part of next(): cos(w t_i + p0); advances to i+1. */
    double nextCos()
    {
        const double v = re_;
        next();
        return v;
    }

  private:
    /** Recomputes the phasor at the current index from libm trig,
     *  using the exact expression the trig reference evaluates. */
    void anchor();

    double w_;           ///< 2 pi f, rad/s
    double sample_rate_; ///< Hz
    double phase0_;      ///< rad
    double rot_re_;      ///< cos(w / fs)
    double rot_im_;      ///< sin(w / fs)
    double re_ = 1.0;
    double im_ = 0.0;
    std::uint64_t index_ = 0;
};

} // namespace eddie::sig

#endif // EDDIE_SIG_OSCILLATOR_H
