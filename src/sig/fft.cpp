#include "fft.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace eddie::sig
{

namespace
{

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/** Iterative radix-2 Cooley-Tukey, in place; n must be a power of two. */
void
fftRadix2(std::vector<Complex> &a, bool inverse)
{
    const std::size_t n = a.size();
    if (n <= 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = (inverse ? kTwoPi : -kTwoPi) / double(len);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                Complex u = a[i + k];
                Complex v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

/**
 * Bluestein chirp-z transform for arbitrary n, expressed as a circular
 * convolution that is evaluated with power-of-two FFTs.
 */
void
fftBluestein(std::vector<Complex> &a, bool inverse)
{
    const std::size_t n = a.size();
    const std::size_t m = nextPowerOfTwo(2 * n + 1);

    // Precompute chirp factors w[k] = e^{+-i pi k^2 / n}.
    std::vector<Complex> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n avoids precision loss for large k.
        const std::size_t k2 = (k * k) % (2 * n);
        const double ang = (inverse ? 1.0 : -1.0) *
            std::numbers::pi * double(k2) / double(n);
        chirp[k] = Complex(std::cos(ang), std::sin(ang));
    }

    std::vector<Complex> x(m, Complex(0.0, 0.0));
    std::vector<Complex> y(m, Complex(0.0, 0.0));
    for (std::size_t k = 0; k < n; ++k)
        x[k] = a[k] * chirp[k];
    y[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k)
        y[k] = y[m - k] = std::conj(chirp[k]);

    fftRadix2(x, false);
    fftRadix2(y, false);
    for (std::size_t k = 0; k < m; ++k)
        x[k] *= y[k];
    fftRadix2(x, true);

    const double scale = 1.0 / double(m);
    for (std::size_t k = 0; k < n; ++k)
        a[k] = x[k] * chirp[k] * scale;
}

void
transform(std::vector<Complex> &a, bool inverse)
{
    if (a.empty())
        return;
    if (isPowerOfTwo(a.size()))
        fftRadix2(a, inverse);
    else
        fftBluestein(a, inverse);
}

} // namespace

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<Complex> &data)
{
    transform(data, false);
}

void
ifft(std::vector<Complex> &data)
{
    transform(data, true);
    const double scale = data.empty() ? 1.0 : 1.0 / double(data.size());
    for (auto &v : data)
        v *= scale;
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    std::vector<Complex> c(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        c[i] = Complex(data[i], 0.0);
    fft(c);
    return c;
}

double
binToFrequency(std::size_t bin, std::size_t n, double sample_rate)
{
    assert(bin < n);
    const double k = double(bin);
    if (bin <= n / 2)
        return k * sample_rate / double(n);
    return (k - double(n)) * sample_rate / double(n);
}

std::size_t
frequencyToBin(double freq, std::size_t n, double sample_rate)
{
    double k = freq * double(n) / sample_rate;
    if (k < 0.0)
        k += double(n);
    std::size_t bin = std::size_t(std::llround(k)) % n;
    return bin;
}

} // namespace eddie::sig
