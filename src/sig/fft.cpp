#include "fft.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fft_plan.h"

namespace eddie::sig
{

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    if (n <= 1)
        return 1;
    const std::size_t max_pow = std::size_t{1}
        << (std::numeric_limits<std::size_t>::digits - 1);
    if (n > max_pow) {
        // p <<= 1 below would wrap to 0 and loop forever.
        throw std::overflow_error(
            "nextPowerOfTwo: no power of two >= n fits in size_t");
    }
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<Complex> &data)
{
    if (data.empty())
        return;
    FftPlan(data.size()).forward(data);
}

void
ifft(std::vector<Complex> &data)
{
    if (data.empty())
        return;
    FftPlan(data.size()).inverse(data);
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    std::vector<Complex> out(data.size());
    if (data.empty())
        return out;
    FftPlan plan(data.size());
    if (plan.hasRealFastPath()) {
        plan.forwardReal(data.data(), out.data());
        return out;
    }
    for (std::size_t i = 0; i < data.size(); ++i)
        out[i] = Complex(data[i], 0.0);
    plan.forward(out);
    return out;
}

double
binToFrequency(std::size_t bin, std::size_t n, double sample_rate)
{
    assert(bin < n);
    const double k = double(bin);
    if (bin <= n / 2)
        return k * sample_rate / double(n);
    return (k - double(n)) * sample_rate / double(n);
}

std::size_t
frequencyToBin(double freq, std::size_t n, double sample_rate)
{
    // Round first, wrap second — wrapping in the double domain
    // (adding n before rounding) loses the low bits of k for huge n,
    // mapping exactly-negative frequencies to a neighboring bin.
    const long long k =
        std::llround(freq * double(n) / sample_rate);
    long long bin = k % (long long)(n);
    if (bin < 0)
        bin += (long long)(n);
    return std::size_t(bin);
}

} // namespace eddie::sig
