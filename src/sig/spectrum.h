/**
 * @file
 * Spectrum utilities: dB conversion and Welch-style averaging.
 */

#ifndef EDDIE_SIG_SPECTRUM_H
#define EDDIE_SIG_SPECTRUM_H

#include <cstddef>
#include <vector>

#include "stft.h"

namespace eddie::sig
{

/** Converts a power value to dB, clamped at a floor for zero power. */
double powerToDb(double power, double floor_db = -200.0);

/** Converts a power spectrum to dB in place. */
std::vector<double> spectrumToDb(const std::vector<double> &power,
                                 double floor_db = -200.0);

/**
 * Averages the power spectra of all frames of a spectrogram
 * (Welch periodogram with the spectrogram's window and overlap).
 */
std::vector<double> averageSpectrum(const Spectrogram &sg);

/** Total power across all bins of a spectrum. */
double totalPower(const std::vector<double> &power);

} // namespace eddie::sig

#endif // EDDIE_SIG_SPECTRUM_H
