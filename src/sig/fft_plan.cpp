#include "fft_plan.h"

#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

namespace eddie::sig
{

namespace detail
{

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/** Immutable per-size tables for the iterative radix-2 transform. */
struct Radix2Tables
{
    std::size_t n = 0;
    /** Bit-reversal permutation of [0, n). */
    std::vector<std::uint32_t> bitrev;
    /** twiddle[j] = e^{-2 pi i j / n}, j in [0, n/2). */
    std::vector<Complex> twiddle;

    explicit Radix2Tables(std::size_t size) : n(size)
    {
        bitrev.resize(n);
        for (std::size_t i = 1, j = 0; i < n; ++i) {
            std::size_t bit = n >> 1;
            for (; j & bit; bit >>= 1)
                j ^= bit;
            j ^= bit;
            bitrev[i] = std::uint32_t(j);
        }
        twiddle.resize(n / 2);
        for (std::size_t j = 0; j < n / 2; ++j) {
            const double ang = -kTwoPi * double(j) / double(n);
            twiddle[j] = Complex(std::cos(ang), std::sin(ang));
        }
    }
};

/**
 * Radix-2 Cooley-Tukey with precomputed tables. Exact twiddles from
 * the table (rather than the w *= wlen recurrence of the untabled
 * fallback) also improve accuracy for large transforms.
 */
void
radix2Transform(Complex *a, const Radix2Tables &t, bool inverse)
{
    const std::size_t n = t.n;
    if (n <= 1)
        return;
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t j = t.bitrev[i];
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::size_t stride = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < half; ++k) {
                Complex w = t.twiddle[k * stride];
                if (inverse)
                    w = std::conj(w);
                const Complex u = a[i + k];
                const Complex v = a[i + k + half] * w;
                a[i + k] = u + v;
                a[i + k + half] = u - v;
            }
        }
    }
}

/**
 * Immutable per-size tables for Bluestein's chirp-z transform: the
 * chirp sequence and the already-transformed chirp filter for both
 * directions, leaving two inner FFTs per transform.
 */
struct BluesteinTables
{
    std::size_t n = 0;
    std::size_t m = 0; // inner power-of-two size
    std::shared_ptr<const Radix2Tables> inner;
    /** chirp[k] = e^{-i pi k^2 / n} (forward direction). */
    std::vector<Complex> chirp;
    /** FFT_m of the wrapped filter conj(chirp) / chirp. */
    std::vector<Complex> filter_fwd;
    std::vector<Complex> filter_inv;

    BluesteinTables(std::size_t size,
                    std::shared_ptr<const Radix2Tables> inner_tables)
        : n(size), m(inner_tables->n), inner(std::move(inner_tables))
    {
        chirp.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            // k^2 mod 2n avoids precision loss for large k.
            const std::size_t k2 = (k * k) % (2 * n);
            const double ang =
                -std::numbers::pi * double(k2) / double(n);
            chirp[k] = Complex(std::cos(ang), std::sin(ang));
        }
        filter_fwd = makeFilter(false);
        filter_inv = makeFilter(true);
    }

  private:
    std::vector<Complex>
    makeFilter(bool inverse) const
    {
        // Forward filter taps are conj(chirp); the inverse chirp is
        // conj(chirp), so its filter taps are chirp itself.
        std::vector<Complex> y(m, Complex(0.0, 0.0));
        y[0] = inverse ? chirp[0] : std::conj(chirp[0]);
        for (std::size_t k = 1; k < n; ++k)
            y[k] = y[m - k] =
                inverse ? chirp[k] : std::conj(chirp[k]);
        radix2Transform(y.data(), *inner, false);
        return y;
    }
};

namespace
{

std::shared_ptr<const Radix2Tables>
sharedRadix2Tables(std::size_t n)
{
    static std::mutex mu;
    static std::map<std::size_t, std::shared_ptr<const Radix2Tables>>
        cache;
    std::lock_guard<std::mutex> lk(mu);
    auto &slot = cache[n];
    if (!slot)
        slot = std::make_shared<Radix2Tables>(n);
    return slot;
}

std::shared_ptr<const BluesteinTables>
sharedBluesteinTables(std::size_t n)
{
    static std::mutex mu;
    static std::map<std::size_t,
                    std::shared_ptr<const BluesteinTables>>
        cache;
    // The inner tables come from the radix-2 cache; fetch them
    // outside this cache's lock to keep the two locks unnested.
    auto inner = sharedRadix2Tables(nextPowerOfTwo(2 * n + 1));
    std::lock_guard<std::mutex> lk(mu);
    auto &slot = cache[n];
    if (!slot)
        slot = std::make_shared<BluesteinTables>(n, std::move(inner));
    return slot;
}

} // namespace

} // namespace detail

FftPlan::FftPlan(std::size_t n) : n_(n)
{
    if (n_ == 0)
        return;
    if (isPowerOfTwo(n_)) {
        radix2_ = detail::sharedRadix2Tables(n_);
    } else {
        bluestein_ = detail::sharedBluesteinTables(n_);
        work_.resize(bluestein_->m);
    }
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan &&) noexcept = default;
FftPlan &FftPlan::operator=(FftPlan &&) noexcept = default;

void
FftPlan::transform(Complex *a, bool inverse)
{
    if (n_ <= 1)
        return;
    if (radix2_) {
        detail::radix2Transform(a, *radix2_, inverse);
        return;
    }
    const auto &t = *bluestein_;
    const std::size_t m = t.m;
    std::fill(work_.begin() + std::ptrdiff_t(n_), work_.end(),
              Complex(0.0, 0.0));
    for (std::size_t k = 0; k < n_; ++k) {
        const Complex c =
            inverse ? std::conj(t.chirp[k]) : t.chirp[k];
        work_[k] = a[k] * c;
    }
    detail::radix2Transform(work_.data(), *t.inner, false);
    const auto &filter = inverse ? t.filter_inv : t.filter_fwd;
    for (std::size_t k = 0; k < m; ++k)
        work_[k] *= filter[k];
    detail::radix2Transform(work_.data(), *t.inner, true);
    const double scale = 1.0 / double(m);
    for (std::size_t k = 0; k < n_; ++k) {
        const Complex c =
            inverse ? std::conj(t.chirp[k]) : t.chirp[k];
        a[k] = work_[k] * c * scale;
    }
}

void
FftPlan::forward(std::vector<Complex> &data)
{
    assert(data.size() == n_);
    transform(data.data(), false);
}

void
FftPlan::inverse(std::vector<Complex> &data)
{
    assert(data.size() == n_);
    transform(data.data(), true);
    if (n_ == 0)
        return;
    const double scale = 1.0 / double(n_);
    for (auto &v : data)
        v *= scale;
}

void
FftPlan::ensureRealTables()
{
    if (half_ != nullptr)
        return;
    const std::size_t h = n_ / 2;
    half_ = std::unique_ptr<FftPlan>(new FftPlan(h));
    packed_.resize(h);
    real_twiddle_.resize(h);
    for (std::size_t k = 0; k < h; ++k) {
        const double ang = -detail::kTwoPi * double(k) / double(n_);
        real_twiddle_[k] = Complex(std::cos(ang), std::sin(ang));
    }
}

void
FftPlan::forwardReal(const double *in, Complex *out)
{
    assert(hasRealFastPath());
    ensureRealTables();
    const std::size_t h = n_ / 2;

    // Pack adjacent real samples into complex pairs and run one
    // half-size transform: z[j] = x[2j] + i x[2j+1].
    for (std::size_t j = 0; j < h; ++j)
        packed_[j] = Complex(in[2 * j], in[2 * j + 1]);
    half_->transform(packed_.data(), false);

    // Unpack: split Z into the even/odd-sample spectra E and O, then
    // X[k] = E[k] + w^k O[k] with w = e^{-2 pi i / n}.
    const Complex z0 = packed_[0];
    out[0] = Complex(z0.real() + z0.imag(), 0.0);
    out[h] = Complex(z0.real() - z0.imag(), 0.0); // Nyquist bin
    for (std::size_t k = 1; k < h; ++k) {
        const Complex zk = packed_[k];
        const Complex zc = std::conj(packed_[h - k]);
        const Complex even = 0.5 * (zk + zc);
        const Complex odd = Complex(0.0, -0.5) * (zk - zc);
        const Complex x = even + real_twiddle_[k] * odd;
        out[k] = x;
        out[n_ - k] = std::conj(x); // real input: mirror spectrum
    }
}

} // namespace eddie::sig
