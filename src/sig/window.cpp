#include "window.h"

#include <cmath>
#include <numbers>

namespace eddie::sig
{

std::vector<double>
makeWindow(WindowType type, std::size_t n)
{
    std::vector<double> w(n, 1.0);
    if (n == 0)
        return w;
    const double tau = 2.0 * std::numbers::pi / double(n);
    switch (type) {
      case WindowType::Rectangular:
        break;
      case WindowType::Hann:
        for (std::size_t i = 0; i < n; ++i)
            w[i] = 0.5 - 0.5 * std::cos(tau * double(i));
        break;
      case WindowType::Hamming:
        for (std::size_t i = 0; i < n; ++i)
            w[i] = 0.54 - 0.46 * std::cos(tau * double(i));
        break;
      case WindowType::Blackman:
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = 0.42 - 0.5 * std::cos(tau * double(i)) +
                0.08 * std::cos(2.0 * tau * double(i));
        }
        break;
    }
    return w;
}

double
windowEnergy(const std::vector<double> &w)
{
    double e = 0.0;
    for (double v : w)
        e += v * v;
    return e;
}

std::string
windowName(WindowType type)
{
    switch (type) {
      case WindowType::Rectangular: return "rectangular";
      case WindowType::Hann: return "hann";
      case WindowType::Hamming: return "hamming";
      case WindowType::Blackman: return "blackman";
    }
    return "unknown";
}

} // namespace eddie::sig
