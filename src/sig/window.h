/**
 * @file
 * Analysis window functions for the STFT.
 */

#ifndef EDDIE_SIG_WINDOW_H
#define EDDIE_SIG_WINDOW_H

#include <cstddef>
#include <string>
#include <vector>

namespace eddie::sig
{

/** Supported analysis window shapes. */
enum class WindowType
{
    Rectangular,
    Hann,
    Hamming,
    Blackman,
};

/** Generates @p n window coefficients of the given shape (periodic). */
std::vector<double> makeWindow(WindowType type, std::size_t n);

/**
 * Sum of squared window coefficients; used to normalize window energy
 * so that spectra computed with different windows are comparable.
 */
double windowEnergy(const std::vector<double> &w);

/** Human-readable name for logging and error messages. */
std::string windowName(WindowType type);

} // namespace eddie::sig

#endif // EDDIE_SIG_WINDOW_H
