/**
 * @file
 * Fast Fourier Transform for arbitrary sizes.
 *
 * Power-of-two sizes use an iterative radix-2 Cooley-Tukey transform;
 * all other sizes fall back to Bluestein's chirp-z algorithm, so any
 * length is supported in O(n log n).
 */

#ifndef EDDIE_SIG_FFT_H
#define EDDIE_SIG_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace eddie::sig
{

using Complex = std::complex<double>;

/** Returns true when @p n is a (nonzero) power of two. */
bool isPowerOfTwo(std::size_t n);

/**
 * Smallest power of two that is >= @p n.
 *
 * @throws std::overflow_error when no such power fits in size_t
 *         (n > 2^63 on 64-bit targets); the naive shift loop would
 *         otherwise wrap to zero and spin forever.
 */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * In-place forward FFT of @p data.
 *
 * Any size is accepted (Bluestein is used for non-powers-of-two).
 * The transform is unnormalized: X[k] = sum_j x[j] e^{-2 pi i jk/n}.
 */
void fft(std::vector<Complex> &data);

/**
 * In-place inverse FFT of @p data, normalized by 1/n so that
 * ifft(fft(x)) == x.
 */
void ifft(std::vector<Complex> &data);

/**
 * Forward FFT of a real signal.
 *
 * @return The full n-point complex spectrum (not just n/2+1 bins);
 *         callers that only need the one-sided spectrum can slice it.
 */
std::vector<Complex> fftReal(const std::vector<double> &data);

/**
 * Maps an FFT bin index to its frequency in Hz.
 *
 * Bins in the upper half of the spectrum map to negative frequencies,
 * matching the usual DFT layout for complex (IQ) input.
 *
 * @param bin bin index in [0, n)
 * @param n transform size
 * @param sample_rate sample rate in Hz
 */
double binToFrequency(std::size_t bin, std::size_t n, double sample_rate);

/** Inverse of binToFrequency: nearest bin for a frequency in Hz. */
std::size_t frequencyToBin(double freq, std::size_t n, double sample_rate);

} // namespace eddie::sig

#endif // EDDIE_SIG_FFT_H
