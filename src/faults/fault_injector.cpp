#include "fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <random>
#include <string>

#include "core/errors.h"
#include "sig/noise.h"

namespace eddie::faults
{

namespace
{

/** Distinct RNG stream per fault class: enabling or re-parameterizing
 *  one class must not move another class's episodes. */
std::uint64_t
classSeed(const FaultConfig &cfg, std::uint64_t run_seed,
          std::uint64_t class_id)
{
    // splitmix64 finalizer over the mixed seeds.
    std::uint64_t z = cfg.seed ^ (run_seed * 0x9E3779B97F4A7C15ULL) ^
                      (class_id * 0xBF58476D1CE4E5B9ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void
checkFinite(double v, const char *what)
{
    if (!std::isfinite(v))
        throw core::ChannelFault(std::string("fault config: ") + what +
                                 " is not finite");
}

void
checkNonNegative(double v, const char *what)
{
    checkFinite(v, what);
    if (v < 0.0)
        throw core::ChannelFault(std::string("fault config: ") + what +
                                 " is negative");
}

void
checkProbability(double v, const char *what)
{
    checkFinite(v, what);
    if (v < 0.0 || v > 1.0)
        throw core::ChannelFault(std::string("fault config: ") + what +
                                 " is outside [0, 1]");
}

void
checkEpisode(const EpisodeConfig &e, const char *what)
{
    checkNonNegative(e.rate_hz, what);
    checkFinite(e.mean_duration_s, what);
    if (e.rate_hz > 0.0 && e.mean_duration_s <= 0.0)
        throw core::ChannelFault(std::string("fault config: ") + what +
                                 " has non-positive mean duration");
}

/** Poisson episode arrivals with exponential durations over
 *  [0, duration_s), clipped to the capture. */
std::vector<FaultEpisode>
drawEpisodes(const EpisodeConfig &e, FaultKind kind, double duration_s,
             std::mt19937_64 &rng)
{
    std::vector<FaultEpisode> out;
    if (e.rate_hz <= 0.0 || duration_s <= 0.0)
        return out;
    std::exponential_distribution<double> gap(e.rate_hz);
    std::exponential_distribution<double> len(1.0 / e.mean_duration_s);
    double t = gap(rng);
    while (t < duration_s) {
        FaultEpisode ep;
        ep.kind = kind;
        ep.t_start = t;
        ep.t_end = std::min(duration_s, t + len(rng));
        out.push_back(ep);
        t = ep.t_end + gap(rng);
    }
    return out;
}

/** [i0, i1) sample range of an episode. */
std::pair<std::size_t, std::size_t>
sampleRange(const FaultEpisode &ep, double sample_rate, std::size_t n)
{
    const auto i0 = std::size_t(ep.t_start * sample_rate);
    auto i1 = std::size_t(std::ceil(ep.t_end * sample_rate));
    return {std::min(i0, n), std::min(i1, n)};
}

double
meanPower(const std::vector<sig::Complex> &x)
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (const auto &v : x)
        p += std::norm(v);
    return p / double(x.size());
}

double
meanPower(const std::vector<double> &x)
{
    if (x.empty())
        return 0.0;
    double p = 0.0;
    for (double v : x)
        p += v * v;
    return p / double(x.size());
}

void
zeroRange(std::vector<sig::Complex> &x, std::size_t i0, std::size_t i1)
{
    std::fill(x.begin() + std::ptrdiff_t(i0),
              x.begin() + std::ptrdiff_t(i1), sig::Complex(0.0, 0.0));
}

void
zeroRange(std::vector<double> &x, std::size_t i0, std::size_t i1)
{
    std::fill(x.begin() + std::ptrdiff_t(i0),
              x.begin() + std::ptrdiff_t(i1), 0.0);
}

void
addNoiseRange(std::vector<sig::Complex> &x, std::size_t i0,
              std::size_t i1, double sigma, std::mt19937_64 &rng)
{
    // Complex AWGN: total variance sigma^2 split across I and Q.
    const double s = sigma / std::numbers::sqrt2;
    std::vector<double> g(2 * (i1 - i0));
    sig::gaussianBlock(rng, g.data(), g.size());
    for (std::size_t i = i0; i < i1; ++i) {
        x[i] += sig::Complex(s * g[2 * (i - i0)],
                             s * g[2 * (i - i0) + 1]);
    }
}

void
addNoiseRange(std::vector<double> &x, std::size_t i0, std::size_t i1,
              double sigma, std::mt19937_64 &rng)
{
    std::vector<double> g(i1 - i0);
    sig::gaussianBlock(rng, g.data(), g.size());
    for (std::size_t i = i0; i < i1; ++i)
        x[i] += sigma * g[i - i0];
}

void
addImpulse(std::vector<sig::Complex> &x, std::size_t i, double amp,
           double u)
{
    // Random-phase impulse; u in [0, 1).
    const double a = 2.0 * std::numbers::pi * u;
    x[i] += amp * sig::Complex(std::cos(a), std::sin(a));
}

void
addImpulse(std::vector<double> &x, std::size_t i, double amp, double u)
{
    x[i] += u < 0.5 ? amp : -amp;
}

/** Everything except drift is identical for real and IQ captures. */
template <typename Signal>
std::vector<FaultEpisode>
applyCommonFaults(Signal &signal, double sample_rate,
                  const FaultConfig &cfg, std::uint64_t run_seed)
{
    std::vector<FaultEpisode> log;
    const std::size_t n = signal.size();
    const double duration_s = double(n) / sample_rate;

    // SNR collapse and interference are applied before dropouts so a
    // dropped receiver really flatlines (order: noise in, then lock
    // lost), and their sigma references the pre-fault signal power.
    const double base_power = meanPower(signal);

    {
        std::mt19937_64 rng(classSeed(cfg, run_seed, 2));
        const auto eps = drawEpisodes(cfg.snr_collapse,
                                      FaultKind::SnrCollapse,
                                      duration_s, rng);
        const double sigma = std::sqrt(
            base_power / std::pow(10.0, cfg.snr_collapse_db / 10.0));
        for (const auto &ep : eps) {
            const auto [i0, i1] = sampleRange(ep, sample_rate, n);
            if (i0 < i1 && sigma > 0.0)
                addNoiseRange(signal, i0, i1, sigma, rng);
        }
        log.insert(log.end(), eps.begin(), eps.end());
    }

    {
        std::mt19937_64 rng(classSeed(cfg, run_seed, 3));
        const auto eps = drawEpisodes(cfg.interference,
                                      FaultKind::Interference,
                                      duration_s, rng);
        std::uniform_real_distribution<double> unit(0.0, 1.0);
        for (const auto &ep : eps) {
            const auto [i0, i1] = sampleRange(ep, sample_rate, n);
            for (std::size_t i = i0; i < i1; ++i) {
                if (unit(rng) < cfg.interference_density)
                    addImpulse(signal, i, cfg.interference_amplitude,
                               unit(rng));
            }
        }
        log.insert(log.end(), eps.begin(), eps.end());
    }

    {
        std::mt19937_64 rng(classSeed(cfg, run_seed, 1));
        const auto eps = drawEpisodes(cfg.dropout, FaultKind::Dropout,
                                      duration_s, rng);
        for (const auto &ep : eps) {
            const auto [i0, i1] = sampleRange(ep, sample_rate, n);
            zeroRange(signal, i0, i1);
        }
        log.insert(log.end(), eps.begin(), eps.end());
    }

    return log;
}

} // namespace

void
validate(const FaultConfig &cfg)
{
    checkEpisode(cfg.dropout, "dropout");
    checkEpisode(cfg.snr_collapse, "snr_collapse");
    checkFinite(cfg.snr_collapse_db, "snr_collapse_db");
    checkEpisode(cfg.interference, "interference");
    checkNonNegative(cfg.interference_amplitude,
                     "interference_amplitude");
    checkProbability(cfg.interference_density, "interference_density");
    checkNonNegative(cfg.drift_max_hz, "drift_max_hz");
    checkFinite(cfg.drift_period_s, "drift_period_s");
    if (cfg.drift_max_hz > 0.0 && cfg.drift_period_s <= 0.0)
        throw core::ChannelFault(
            "fault config: drift enabled with non-positive period");
    checkProbability(cfg.frame_truncate_prob, "frame_truncate_prob");
    checkProbability(cfg.frame_corrupt_prob, "frame_corrupt_prob");
}

std::vector<FaultEpisode>
applySignalFaults(std::vector<sig::Complex> &iq, double sample_rate,
                  const FaultConfig &cfg, std::uint64_t run_seed)
{
    if (!cfg.enabled)
        return {};
    validate(cfg);
    auto log = applyCommonFaults(iq, sample_rate, cfg, run_seed);

    if (cfg.drift_max_hz > 0.0 && !iq.empty()) {
        // Sawtooth carrier-offset ramp, phase-continuous: the
        // instantaneous offset rises 0 → drift_max_hz over each
        // period, then snaps back (a receiver re-acquiring the
        // carrier). Phase accumulates so the IQ rotation is smooth
        // within a ramp.
        double phase = 0.0;
        const double dt = 1.0 / sample_rate;
        for (std::size_t i = 0; i < iq.size(); ++i) {
            const double t = double(i) * dt;
            const double ramp =
                (t / cfg.drift_period_s) -
                std::floor(t / cfg.drift_period_s);
            phase += 2.0 * std::numbers::pi * cfg.drift_max_hz * ramp *
                     dt;
            iq[i] *= sig::Complex(std::cos(phase), std::sin(phase));
        }
        FaultEpisode ep;
        ep.kind = FaultKind::Drift;
        ep.t_start = 0.0;
        ep.t_end = double(iq.size()) * dt;
        log.push_back(ep);
    }
    return log;
}

std::vector<FaultEpisode>
applySignalFaults(std::vector<double> &signal, double sample_rate,
                  const FaultConfig &cfg, std::uint64_t run_seed)
{
    if (!cfg.enabled)
        return {};
    validate(cfg);
    // Drift needs a complex carrier to rotate; skipped on the direct
    // power path.
    return applyCommonFaults(signal, sample_rate, cfg, run_seed);
}

std::vector<std::uint8_t>
applyFrameFaults(const std::vector<std::vector<double> *> &frames,
                 double sentinel, const FaultConfig &cfg,
                 std::uint64_t run_seed)
{
    std::vector<std::uint8_t> faulted(frames.size(), 0);
    if (!cfg.enabled)
        return faulted;
    validate(cfg);
    if (cfg.frame_truncate_prob <= 0.0 && cfg.frame_corrupt_prob <= 0.0)
        return faulted;

    std::mt19937_64 rng(classSeed(cfg, run_seed, 4));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const double junk_span = sentinel > 0.0 ? 2.0 * sentinel : 1.0;
    for (std::size_t f = 0; f < frames.size(); ++f) {
        auto &peaks = *frames[f];
        if (unit(rng) < cfg.frame_truncate_prob) {
            // Drop the tail without sentinel padding: the frame
            // arrives short, as a truncated radio frame would.
            const auto keep =
                std::size_t(unit(rng) * double(peaks.size()) / 2.0);
            peaks.resize(keep);
            faulted[f] = 1;
        }
        if (unit(rng) < cfg.frame_corrupt_prob) {
            for (auto &v : peaks) {
                const double u = unit(rng);
                // Mostly out-of-band junk; occasionally the
                // classic symptom of a mangled frame, a NaN.
                v = u < 0.1 ?
                        std::numeric_limits<double>::quiet_NaN() :
                        u * junk_span;
            }
            faulted[f] = 1;
        }
    }
    return faulted;
}

} // namespace eddie::faults
