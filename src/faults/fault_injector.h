/**
 * @file
 * Deterministic channel fault injection (DESIGN.md §6,
 * docs/ALGORITHM.md §10).
 *
 * EDDIE's evaluation otherwise assumes a clean receiver; real EM
 * capture loses antenna lock, picks up interferers, drifts off the
 * carrier, and delivers truncated frames. This subsystem layers those
 * degradations onto the synthesized channel so every one of them is a
 * reproducible regression scenario:
 *
 *  - burst sample dropouts (receiver loses lock; samples flatline),
 *  - SNR-collapse episodes (noise floor swamps the signal),
 *  - impulsive wideband interference (sparse strong spikes),
 *  - carrier/clock drift ramps (IQ path only: a sawtooth frequency
 *    offset, phase-continuous),
 *  - frame truncation/corruption on the extracted STS stream.
 *
 * Every fault class is independently configurable and draws from its
 * own RNG stream derived from (config seed, class id, run seed), so
 * enabling one class never perturbs another's episodes and the same
 * seeds always reproduce the same degradation — the property the
 * robustness tests and the bench degradation sweep rely on.
 *
 * Layering: this library sits below core (it depends only on sig and
 * the header-only core/errors.h), so the pipeline can apply faults
 * inside the capture chain without a dependency cycle.
 */

#ifndef EDDIE_FAULTS_FAULT_INJECTOR_H
#define EDDIE_FAULTS_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sig/fft.h"

namespace eddie::faults
{

/** Episode process of one fault class: episodes arrive as a Poisson
 *  process and last an exponentially distributed duration. */
struct EpisodeConfig
{
    /** Expected episodes per second of capture; 0 disables. */
    double rate_hz = 0.0;
    /** Mean episode duration, seconds. */
    double mean_duration_s = 2e-4;
};

/** Complete channel fault model. Default-constructed = clean channel
 *  (enabled=false makes every application an exact no-op). */
struct FaultConfig
{
    /** Master switch; false bypasses fault injection entirely. */
    bool enabled = false;
    /** Base seed; mixed with a per-run seed so different runs see
     *  different (but reproducible) episode placements. */
    std::uint64_t seed = 0xFA017;

    /** Burst sample dropouts: samples in an episode are zeroed. */
    EpisodeConfig dropout;

    /** SNR-collapse episodes: AWGN added over the episode span. */
    EpisodeConfig snr_collapse;
    /** SNR (dB, relative to the whole signal's power) during a
     *  collapse episode; negative = noise stronger than signal. */
    double snr_collapse_db = -3.0;

    /** Impulsive wideband interference episodes. */
    EpisodeConfig interference;
    /** Impulse amplitude relative to unit carrier. */
    double interference_amplitude = 4.0;
    /** Per-sample impulse probability within an episode. */
    double interference_density = 0.15;

    /** Peak carrier-offset of the drift ramp, Hz; 0 disables. The
     *  offset ramps 0 → drift_max_hz over each drift_period_s
     *  (sawtooth), phase-continuous. IQ signals only. */
    double drift_max_hz = 0.0;
    double drift_period_s = 1e-2;

    /** Probability that an extracted frame's peak list is truncated
     *  (tail dropped, no sentinel padding — a short frame). */
    double frame_truncate_prob = 0.0;
    /** Probability that a frame's peaks are overwritten with junk
     *  (out-of-band frequencies, occasionally non-finite). */
    double frame_corrupt_prob = 0.0;
};

/** Kind of one logged fault episode. */
enum class FaultKind
{
    Dropout,
    SnrCollapse,
    Interference,
    Drift,
};

/** One applied degradation episode (ground truth for scoring). */
struct FaultEpisode
{
    FaultKind kind = FaultKind::Dropout;
    /** Start/end time within the capture, seconds. */
    double t_start = 0.0;
    double t_end = 0.0;
};

/** Throws eddie::core::ChannelFault when @p cfg holds non-finite or
 *  negative rates/durations/probabilities. */
void validate(const FaultConfig &cfg);

/**
 * Applies the signal-level faults (dropout, SNR collapse,
 * interference, drift) to a complex-baseband capture in place.
 *
 * @param iq IQ samples (mutated)
 * @param sample_rate rate of @p iq, Hz
 * @param cfg fault model (validated; no-op when !cfg.enabled)
 * @param run_seed per-run entropy mixed into every episode stream
 * @return the applied episodes, ordered by class then time
 */
std::vector<FaultEpisode> applySignalFaults(std::vector<sig::Complex> &iq,
                                            double sample_rate,
                                            const FaultConfig &cfg,
                                            std::uint64_t run_seed);

/** Real-signal variant (direct power path). Drift does not apply to
 *  real captures and is skipped. */
std::vector<FaultEpisode> applySignalFaults(std::vector<double> &signal,
                                            double sample_rate,
                                            const FaultConfig &cfg,
                                            std::uint64_t run_seed);

/**
 * Applies frame truncation/corruption to ranked peak-frequency lists
 * (one vector per STFT frame, passed as pointers so the caller's
 * frame type stays above this library).
 *
 * @param frames peak list of each frame (mutated)
 * @param sentinel missing-peak sentinel of the stream (junk
 *        frequencies are drawn from [0, 2*sentinel))
 * @return one flag per frame: nonzero when the frame was faulted
 */
std::vector<std::uint8_t>
applyFrameFaults(const std::vector<std::vector<double> *> &frames,
                 double sentinel, const FaultConfig &cfg,
                 std::uint64_t run_seed);

} // namespace eddie::faults

#endif // EDDIE_FAULTS_FAULT_INJECTOR_H
