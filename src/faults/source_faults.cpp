#include "source_faults.h"

#include <cmath>
#include <string>

#include "core/errors.h"

namespace eddie::faults
{

std::uint64_t
fateMix(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                      (b * 0xBF58476D1CE4E5B9ULL) ^
                      0x50FA5CEDULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

double
fateUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    return double(fateMix(seed, a, b) >> 11) * 0x1.0p-53;
}

namespace
{

void
checkProbability(double v, const char *what)
{
    if (!std::isfinite(v) || v < 0.0 || v > 1.0)
        throw core::ChannelFault(std::string("source fault config: ") +
                                 what + " is outside [0, 1]");
}

} // namespace

void
validate(const SourceFaultConfig &cfg)
{
    checkProbability(cfg.stall_prob, "stall_prob");
    checkProbability(cfg.error_prob, "error_prob");
    if (cfg.stall_prob + cfg.error_prob > 1.0)
        throw core::ChannelFault(
            "source fault config: stall_prob + error_prob above 1");
}

PullFate
pullFate(const SourceFaultConfig &cfg, std::uint64_t index,
         std::uint64_t attempt)
{
    if (!cfg.enabled)
        return PullFate::Deliver;
    // The attempt at max_consecutive always delivers: faults delay
    // windows, they never destroy them.
    if (attempt >= cfg.max_consecutive)
        return PullFate::Deliver;
    const double u = fateUniform(cfg.seed, index, attempt);
    if (u < cfg.stall_prob)
        return PullFate::Stall;
    if (u < cfg.stall_prob + cfg.error_prob)
        return PullFate::TransientError;
    return PullFate::Deliver;
}

} // namespace eddie::faults
