/**
 * @file
 * Deterministic source-level fault shapes for the serving runtime
 * (src/serve/sample_source.h). Where fault_injector.h degrades the
 * *signal*, this models the *delivery path* misbehaving: a pull from
 * the sample source stalls (receiver buffer underrun, slow IPC) or
 * fails transiently (socket reset, USB glitch) before the window is
 * eventually delivered.
 *
 * The schedule is a pure function of (seed, item index, attempt
 * number), so the same seed always yields the same fault pattern
 * regardless of retry timing — the property the retry/backoff tests
 * and the recovery bench rely on. Consecutive faults per item are
 * capped, so with a retry budget above the cap every window is
 * eventually delivered (faults delay, they never destroy).
 */

#ifndef EDDIE_FAULTS_SOURCE_FAULTS_H
#define EDDIE_FAULTS_SOURCE_FAULTS_H

#include <cstdint>

namespace eddie::faults
{

/** Fault model of one sample-delivery path. Default-constructed =
 *  perfect source (every pull delivers). */
struct SourceFaultConfig
{
    /** Master switch; false makes every pull deliver. */
    bool enabled = false;
    /** Base seed; the schedule is deterministic in it. */
    std::uint64_t seed = 0x50FA;
    /** Probability that a pull attempt stalls (no data yet). */
    double stall_prob = 0.0;
    /** Probability that a pull attempt fails transiently. */
    double error_prob = 0.0;
    /** Cap on consecutive faulted attempts per item; the attempt at
     *  this index always delivers. Keeps a bounded retry budget
     *  sufficient for full delivery. */
    std::uint64_t max_consecutive = 3;
};

/** Fate of one pull attempt. */
enum class PullFate
{
    Deliver,
    Stall,
    TransientError,
};

/** Throws eddie::core::ChannelFault on non-finite or out-of-range
 *  probabilities, or when the two probabilities sum above 1. */
void validate(const SourceFaultConfig &cfg);

/**
 * splitmix64 finalizer over the mixed identifiers (same scheme as
 * fault_injector.cpp's classSeed). This is the shared deterministic
 * draw behind pullFate and the serve-layer chaos scheduler
 * (serve/chaos.h): pure in (seed, a, b), so every fate stream is
 * replayable from its seed alone.
 */
std::uint64_t fateMix(std::uint64_t seed, std::uint64_t a,
                      std::uint64_t b);

/** fateMix folded to a uniform draw in [0, 1). */
double fateUniform(std::uint64_t seed, std::uint64_t a,
                   std::uint64_t b);

/**
 * Fate of attempt @p attempt (0-based) at delivering item @p index.
 * Pure and stateless: derived by hashing (seed, index, attempt), so
 * concurrent shards with different seeds draw independent schedules
 * and a re-seeked source replays its schedule exactly.
 */
PullFate pullFate(const SourceFaultConfig &cfg, std::uint64_t index,
                  std::uint64_t attempt);

} // namespace eddie::faults

#endif // EDDIE_FAULTS_SOURCE_FAULTS_H
