#include "scenarios.h"

#include <stdexcept>

#include "prog/regions.h"

namespace eddie::inject
{

namespace
{

/** Transition region that fires when @p after_loop exits; falls back
 *  to the loop region itself when no transition exists. */
std::size_t
exitTrigger(const workloads::Workload &w, std::size_t after_loop)
{
    const auto &rg = w.regions;
    for (std::size_t i = rg.num_loops; i < rg.regions.size(); ++i)
        if (rg.regions[i].from_loop == after_loop)
            return i;
    return after_loop;
}

} // namespace

cpu::InjectionPlan
shellBurst(const workloads::Workload &w, std::size_t after_loop,
           std::size_t occurrence, std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::BurstInjection burst;
    burst.trigger_region = exitTrigger(w, after_loop);
    burst.occurrence = occurrence;
    burst.total_ops = 476'000;
    plan.bursts.push_back(burst);
    return plan;
}

cpu::InjectionPlan
loopPayload(std::size_t loop_region, std::size_t num_instrs,
            double contamination, std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::LoopInjection li;
    li.loop_region = loop_region;
    li.ops = cpu::storeAddPayload(num_instrs);
    li.contamination = contamination;
    plan.loops.push_back(std::move(li));
    return plan;
}

cpu::InjectionPlan
canonicalLoopInjection(std::size_t loop_region, double contamination,
                       std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::LoopInjection li;
    li.loop_region = loop_region;
    li.ops = cpu::canonicalLoopPayload();
    li.contamination = contamination;
    plan.loops.push_back(std::move(li));
    return plan;
}

cpu::InjectionPlan
onChipLoopInjection(std::size_t loop_region, std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::LoopInjection li;
    li.loop_region = loop_region;
    li.ops = cpu::onChipPayload();
    plan.loops.push_back(std::move(li));
    return plan;
}

cpu::InjectionPlan
offChipLoopInjection(std::size_t loop_region, std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::LoopInjection li;
    li.loop_region = loop_region;
    li.ops = cpu::offChipPayload();
    plan.loops.push_back(std::move(li));
    return plan;
}

cpu::InjectionPlan
burstOfSize(const workloads::Workload &w, std::size_t after_loop,
            std::uint64_t ops, std::size_t occurrence, std::uint64_t seed)
{
    cpu::InjectionPlan plan;
    plan.seed = seed;
    cpu::BurstInjection burst;
    burst.trigger_region = exitTrigger(w, after_loop);
    burst.occurrence = occurrence;
    burst.total_ops = ops;
    // An "empty loop": add + compare-like adds, no memory traffic.
    burst.body.assign(8, cpu::InjectedOp::Add);
    plan.bursts.push_back(burst);
    return plan;
}

std::size_t
defaultTargetLoop(const workloads::Workload &w)
{
    const auto &rg = w.regions;
    if (rg.num_loops == 0)
        throw std::invalid_argument("workload has no loop regions");
    std::vector<std::size_t> instr_count(rg.num_loops, 0);
    for (std::size_t i = 0; i < rg.loop_region_of_instr.size(); ++i) {
        const std::size_t r = rg.loop_region_of_instr[i];
        if (r < rg.num_loops)
            ++instr_count[r];
    }
    std::size_t best = 0;
    for (std::size_t r = 1; r < rg.num_loops; ++r)
        if (instr_count[r] > instr_count[best])
            best = r;
    return best;
}

} // namespace eddie::inject
