/**
 * @file
 * Canonical injection scenarios from the paper's evaluation:
 * shell-invocation bursts outside loops (Sec. 5.2), small loop-body
 * payloads with contamination rates (Sections 5.4-5.5), burst size
 * sweeps (Fig. 8), and instruction-mix variants (Sec. 5.7).
 */

#ifndef EDDIE_INJECT_SCENARIOS_H
#define EDDIE_INJECT_SCENARIOS_H

#include <cstdint>

#include "cpu/injection.h"
#include "workloads/workload.h"

namespace eddie::inject
{

/**
 * The paper's empty-shell injection: ~476k dynamic instructions
 * executed in a burst when execution leaves @p after_loop (i.e.,
 * inside the following inter-loop region), adding ~3 ms at the
 * paper's clock. Triggered at the @p occurrence-th exit.
 */
cpu::InjectionPlan shellBurst(const workloads::Workload &w,
                              std::size_t after_loop,
                              std::size_t occurrence = 1,
                              std::uint64_t seed = 1);

/**
 * Loop-body injection: @p num_instrs per contaminated iteration of
 * @p loop_region, alternating stores and adds as in the paper's size
 * sweep (Sec. 5.5). @p contamination is the fraction of iterations
 * injected (Sec. 5.4).
 */
cpu::InjectionPlan loopPayload(std::size_t loop_region,
                               std::size_t num_instrs,
                               double contamination = 1.0,
                               std::uint64_t seed = 1);

/** The canonical 8-instruction payload: 4 integer ops + 4 memory
 *  accesses (paper Sec. 5.2/5.4). */
cpu::InjectionPlan canonicalLoopInjection(std::size_t loop_region,
                                          double contamination = 1.0,
                                          std::uint64_t seed = 1);

/** Instruction-mix variants of Sec. 5.7. */
cpu::InjectionPlan onChipLoopInjection(std::size_t loop_region,
                                       std::uint64_t seed = 1);
cpu::InjectionPlan offChipLoopInjection(std::size_t loop_region,
                                        std::uint64_t seed = 1);

/**
 * Empty-loop burst of @p ops dynamic instructions between loop
 * regions (Fig. 8's 100k-500k sweep), triggered when execution
 * leaves @p after_loop.
 */
cpu::InjectionPlan burstOfSize(const workloads::Workload &w,
                               std::size_t after_loop, std::uint64_t ops,
                               std::size_t occurrence = 1,
                               std::uint64_t seed = 1);

/**
 * A sensible default loop region to contaminate: the loop region
 * whose nest contains the most static instructions (a stand-in for
 * "the hot loop").
 */
std::size_t defaultTargetLoop(const workloads::Workload &w);

} // namespace eddie::inject

#endif // EDDIE_INJECT_SCENARIOS_H
