#include "crc32.h"

#include <array>
#include <fstream>

namespace eddie::common
{

namespace
{

constexpr std::uint32_t kPoly = 0xEDB88320u;

/** Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table,
 *  kTables[k][b] advances byte b through k additional zero bytes, so
 *  eight table lookups retire eight input bytes per iteration. Same
 *  polynomial, bit-identical results to the bytewise loop. */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k)
        for (std::size_t i = 0; i < 256; ++i)
            t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    return t;
}

constexpr auto kTables = makeTables();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    while (size >= 8) {
        // Byte-assembled loads keep this endian-portable; compilers
        // lower them to single 32-bit loads on little-endian targets.
        const std::uint32_t lo =
            std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
            (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
        const std::uint32_t hi =
            std::uint32_t(p[4]) | (std::uint32_t(p[5]) << 8) |
            (std::uint32_t(p[6]) << 16) | (std::uint32_t(p[7]) << 24);
        c ^= lo;
        c = kTables[7][c & 0xFFu] ^ kTables[6][(c >> 8) & 0xFFu] ^
            kTables[5][(c >> 16) & 0xFFu] ^ kTables[4][c >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        p += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(const std::string &bytes, std::uint32_t seed)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

std::optional<std::uint32_t>
crc32File(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    char buf[1 << 16];
    std::uint32_t c = 0;
    while (is) {
        is.read(buf, sizeof buf);
        c = crc32(buf, std::size_t(is.gcount()), c);
    }
    if (is.bad())
        return std::nullopt;
    return c;
}

} // namespace eddie::common
