#include "crc32.h"

#include <array>
#include <fstream>

namespace eddie::common
{

namespace
{

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(const std::string &bytes, std::uint32_t seed)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

std::optional<std::uint32_t>
crc32File(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    char buf[1 << 16];
    std::uint32_t c = 0;
    while (is) {
        is.read(buf, sizeof buf);
        c = crc32(buf, std::size_t(is.gcount()), c);
    }
    if (is.bad())
        return std::nullopt;
    return c;
}

} // namespace eddie::common
