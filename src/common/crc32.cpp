#include "crc32.h"

#include <array>
#include <fstream>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace eddie::common
{

namespace
{

constexpr std::uint32_t kPoly = 0xEDB88320u;

/** Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table,
 *  kTables[k][b] advances byte b through k additional zero bytes, so
 *  eight table lookups retire eight input bytes per iteration. Same
 *  polynomial, bit-identical results to the bytewise loop. */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k)
        for (std::size_t i = 0; i < 256; ++i)
            t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    return t;
}

constexpr auto kTables = makeTables();

#if defined(__x86_64__)

/**
 * Carry-less-multiply fast path (PCLMULQDQ): folds 64-byte blocks of
 * input into four 128-bit accumulators, then reduces to the 32-bit
 * CRC register. Same polynomial, bit-identical to the table loop —
 * the folding constants are x^N mod P(x) for the fold distances, so
 * this is the identical polynomial division evaluated wider. Used
 * when the CPU advertises the instructions; wire framing checksums
 * every streamed batch twice (sender seal + receiver verify), which
 * made the ~1.8 GB/s table walk a measurable slice of ingest cost.
 *
 * @p crc and the return value are the *raw* shift-register state
 * (already seed-inverted); the caller owns the ^0xFFFFFFFF ends.
 * @p size must be a multiple of 16 and at least 64.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32Clmul(const unsigned char *p, std::size_t size,
           std::uint32_t crc)
{
    // Fold constants for reflected 0x04C11DB7 (Intel's "Fast CRC
    // Computation Using PCLMULQDQ" method): k1/k2 fold across 512
    // bits, k3/k4 across 128, k5 reduces 128->64, and the last pair
    // is the Barrett constant mu with the full polynomial P'.
    const __m128i k1k2 =
        _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
    const __m128i k3k4 =
        _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
    const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
    const __m128i mu_poly =
        _mm_set_epi64x(0x01f7011641, 0x01db710641);

    __m128i x1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(p + 0x00));
    __m128i x2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(p + 0x10));
    __m128i x3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(p + 0x20));
    __m128i x4 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(p + 0x30));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(int(crc)));
    p += 64;
    size -= 64;

    while (size >= 64) {
        const __m128i f1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        const __m128i f2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        const __m128i f3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        const __m128i f4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, f1),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 0x00)));
        x2 = _mm_xor_si128(
            _mm_xor_si128(x2, f2),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 0x10)));
        x3 = _mm_xor_si128(
            _mm_xor_si128(x3, f3),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 0x20)));
        x4 = _mm_xor_si128(
            _mm_xor_si128(x4, f4),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 0x30)));
        p += 64;
        size -= 64;
    }

    // Fold the four accumulators into one.
    __m128i f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x2);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x3);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x4);

    while (size >= 16) {
        f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, f),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
        p += 16;
        size -= 16;
    }

    // Reduce 128 -> 64 bits.
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), f);
    f = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, f);

    // Barrett reduction 64 -> 32 bits.
    f = _mm_and_si128(x1, mask32);
    f = _mm_clmulepi64_si128(f, mu_poly, 0x10);
    f = _mm_and_si128(f, mask32);
    f = _mm_clmulepi64_si128(f, mu_poly, 0x00);
    x1 = _mm_xor_si128(x1, f);
    return std::uint32_t(_mm_extract_epi32(x1, 1));
}

bool
haveClmul()
{
    static const bool ok = __builtin_cpu_supports("pclmul") &&
                           __builtin_cpu_supports("sse4.1");
    return ok;
}

#endif // __x86_64__

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(__x86_64__)
    if (size >= 64 && haveClmul()) {
        const std::size_t folded = size & ~std::size_t(15);
        c = crc32Clmul(p, folded, c);
        p += folded;
        size -= folded;
    }
#endif
    while (size >= 8) {
        // Byte-assembled loads keep this endian-portable; compilers
        // lower them to single 32-bit loads on little-endian targets.
        const std::uint32_t lo =
            std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
            (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
        const std::uint32_t hi =
            std::uint32_t(p[4]) | (std::uint32_t(p[5]) << 8) |
            (std::uint32_t(p[6]) << 16) | (std::uint32_t(p[7]) << 24);
        c ^= lo;
        c = kTables[7][c & 0xFFu] ^ kTables[6][(c >> 8) & 0xFFu] ^
            kTables[5][(c >> 16) & 0xFFu] ^ kTables[4][c >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        p += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(const std::string &bytes, std::uint32_t seed)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

std::optional<std::uint32_t>
crc32File(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    char buf[1 << 16];
    std::uint32_t c = 0;
    while (is) {
        is.read(buf, sizeof buf);
        c = crc32(buf, std::size_t(is.gcount()), c);
    }
    if (is.bad())
        return std::nullopt;
    return c;
}

} // namespace eddie::common
