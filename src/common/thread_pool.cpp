#include "thread_pool.h"

#include <algorithm>

namespace eddie::common
{

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t total =
        threads == 0 ? hardwareThreads() : threads;
    // The caller is one of the `total` threads; only helpers spawn.
    workers_.reserve(total > 0 ? total - 1 : 0);
    for (std::size_t i = 0; i + 1 < total; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::runBatch(Batch &batch)
{
    for (;;) {
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.count)
            return;
        try {
            (*batch.job)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!batch.error)
                batch.error = std::current_exception();
        }
        // The release increment publishes this index's writes; the
        // caller's acquire load of `done` in parallelFor picks them
        // all up once the count is reached.
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch.count) {
            // Taking the lock pairs with the caller's predicate
            // check, closing the missed-wakeup window.
            std::lock_guard<std::mutex> lk(mu_);
            cv_done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        // Serial path: plain loop with the same drain-then-rethrow
        // exception semantics as the threaded path, so behaviour is
        // identical at every thread count.
        std::exception_ptr err;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!err)
                    err = std::current_exception();
            }
        }
        if (err)
            std::rethrow_exception(err);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->job = &fn;
    batch->count = count;
    {
        std::lock_guard<std::mutex> lk(mu_);
        batch_ = batch;
        ++generation_;
    }
    cv_work_.notify_all();

    runBatch(*batch); // the caller works too

    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
        return batch->done.load(std::memory_order_acquire) ==
               batch->count;
    });
    if (batch->error) {
        std::exception_ptr err = batch->error;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            batch = batch_;
        }
        // A late wake-up is harmless: a finished batch hands out no
        // index, and the snapshot keeps the object alive.
        runBatch(*batch);
    }
}

} // namespace eddie::common
