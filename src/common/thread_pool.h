/**
 * @file
 * Deterministic fixed-size thread pool for index-parallel loops.
 *
 * EDDIE's expensive stages (training captures, the trainer's
 * group-size sweep, Monte-Carlo monitoring) are all embarrassingly
 * parallel over an index: every index reads shared immutable inputs
 * and writes only its own output slot. This pool exploits exactly
 * that shape and nothing more — there is no work stealing, no task
 * graph, and no cross-batch queueing.
 *
 * Determinism contract: parallelFor(count, fn) executes fn(i) exactly
 * once for every i in [0, count) and returns only after all of them
 * completed. Which thread runs which index is unspecified, but as
 * long as fn(i) touches only index-i state (the pattern used
 * everywhere in this repo, enforced by parallelMap's slot-per-index
 * result vector), the combined result is bit-identical for any thread
 * count, including 1.
 */

#ifndef EDDIE_COMMON_THREAD_POOL_H
#define EDDIE_COMMON_THREAD_POOL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eddie::common
{

/**
 * Pool of `size() - 1` helper threads plus the calling thread.
 *
 * A pool of size 1 spawns no threads at all: parallelFor degrades to
 * a plain serial loop on the caller, so single-threaded runs behave
 * exactly like the pre-pool code (same stack, same exception
 * propagation, debuggable with a plain debugger).
 *
 * Not reentrant: calling parallelFor from inside a task deadlocks by
 * design (the stages that use the pool are strictly sequential).
 */
class ThreadPool
{
  public:
    /** @param threads total thread count; 0 = hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads that execute work, including the calling thread. */
    std::size_t size() const { return workers_.size() + 1; }

    /**
     * Runs fn(i) for every i in [0, count); blocks until all indices
     * completed. The caller participates in the work. If one or more
     * invocations throw, one of the captured exceptions is rethrown
     * after the whole batch has drained (the batch is never
     * abandoned half-done).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Maps [0, count) through @p fn into an index-ordered vector.
     * Slot i is written only by the invocation fn(i), which is what
     * makes the result independent of scheduling.
     */
    template <typename Fn>
    auto parallelMap(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        std::vector<decltype(fn(std::size_t{0}))> out(count);
        parallelFor(count,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Hardware concurrency, never 0. */
    static std::size_t hardwareThreads();

    /**
     * Resolves a user-facing thread-count knob: 0 = hardware, and
     * anything larger is clamped to the hardware concurrency. The
     * workloads this pool runs are CPU-bound with no blocking, so
     * oversubscription can only add context switches and cache
     * pressure — the perf_pipeline train grid measured 8 requested
     * threads *slower* than 1 on small machines before the clamp.
     * Results are thread-count-invariant anyway, so clamping changes
     * nothing but the cost. (The raw ThreadPool(n) constructor stays
     * unclamped: concurrency tests rely on spawning real contention
     * regardless of core count.)
     */
    static std::size_t resolveThreads(std::size_t requested)
    {
        const std::size_t hw = hardwareThreads();
        return requested == 0 ? hw : std::min(requested, hw);
    }

  private:
    /**
     * One parallelFor invocation. Heap-allocated and snapshotted by
     * each participant under the mutex, so a helper that wakes up
     * late only ever touches its own (possibly already finished)
     * batch object — there is no window in which a straggler can
     * observe the next batch's half-initialized state.
     */
    struct Batch
    {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error; // guarded by the pool mutex
    };

    void workerLoop();
    void runBatch(Batch &batch);

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::shared_ptr<Batch> batch_;   // guarded by mu_
    std::uint64_t generation_ = 0;   // guarded by mu_
    bool stop_ = false;              // guarded by mu_
};

/**
 * Serial fallback helper: runs the loop on @p pool when present,
 * inline otherwise. Lets library code accept an optional pool without
 * branching at every call site.
 */
inline void
forEachIndex(ThreadPool *pool, std::size_t count,
             const std::function<void(std::size_t)> &fn)
{
    if (pool != nullptr) {
        pool->parallelFor(count, fn);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
    }
}

} // namespace eddie::common

#endif // EDDIE_COMMON_THREAD_POOL_H
