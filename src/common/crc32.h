/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the
 * persistence layer's integrity framing: model, capture, STS-stream,
 * and cache-spill files all carry a checksum over their payload so a
 * bit-flipped or short artifact is detected before it can poison a
 * cache or train a model (see docs/ALGORITHM.md §10).
 */

#ifndef EDDIE_COMMON_CRC32_H
#define EDDIE_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace eddie::common
{

/** CRC-32 of @p data; @p seed chains incremental updates (pass a
 *  previous result to continue a running checksum). */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Convenience overload for whole byte strings. */
std::uint32_t crc32(const std::string &bytes, std::uint32_t seed = 0);

/**
 * CRC-32 of a whole file's bytes, streamed in fixed-size chunks;
 * nullopt when the file cannot be opened or read. The serving
 * runtime's hot model reload polls this to detect a changed model
 * artifact without parsing it.
 */
std::optional<std::uint32_t> crc32File(const std::string &path);

} // namespace eddie::common

#endif // EDDIE_COMMON_CRC32_H
