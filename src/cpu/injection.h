/**
 * @file
 * Code-injection specifications applied at the dynamic-instruction
 * level, mirroring the paper's simulator experiments: "directly
 * injecting dynamic instructions into the simulated instruction
 * stream without changing the application's code or using any
 * architectural registers" (Sec. 5.3).
 */

#ifndef EDDIE_CPU_INJECTION_H
#define EDDIE_CPU_INJECTION_H

#include <cstdint>
#include <vector>

namespace eddie::cpu
{

/** Kind of one injected micro-operation. */
enum class InjectedOp
{
    Add,       ///< on-chip integer op
    Mul,       ///< on-chip multiply
    StoreHit,  ///< store into a small (cache-resident) region
    StoreMiss, ///< store that strides a large array (off-chip traffic)
    Load,      ///< load from the large array
};

/**
 * Injection of a few instructions into each iteration of a loop
 * (paper Sections 5.4, 5.5, 5.7). The injection triggers every time
 * control returns to the loop header.
 */
struct LoopInjection
{
    /** Loop region id (RegionGraph loop region) to contaminate. */
    std::size_t loop_region = 0;
    /** Micro-ops injected per contaminated iteration. */
    std::vector<InjectedOp> ops;
    /** Fraction of iterations that receive the injection (paper's
     *  contamination rate, Sec. 5.4). */
    double contamination = 1.0;
};

/**
 * A one-shot burst of injected execution outside loops (shellcode
 * stand-in; paper Sections 5.2, 5.5). The burst triggers the
 * @p occurrence-th time execution enters @p trigger_region and runs
 * @p total_ops micro-ops shaped like a small loop body.
 */
struct BurstInjection
{
    /** Region id whose entry triggers the burst. */
    std::size_t trigger_region = 0;
    /** 1-based occurrence of the region entry that triggers. */
    std::size_t occurrence = 1;
    /** Total injected micro-ops (paper's empty shell: ~476k). */
    std::uint64_t total_ops = 476'000;
    /** Repeating body pattern of the burst. */
    std::vector<InjectedOp> body{InjectedOp::Add, InjectedOp::Add,
                                 InjectedOp::Load, InjectedOp::Add,
                                 InjectedOp::StoreHit, InjectedOp::Add,
                                 InjectedOp::Add, InjectedOp::Add};
};

/** Complete injection plan for one run. */
struct InjectionPlan
{
    std::vector<LoopInjection> loops;
    std::vector<BurstInjection> bursts;
    /** RNG seed for contamination sampling and address generation. */
    std::uint64_t seed = 1;

    bool empty() const { return loops.empty() && bursts.empty(); }
};

/** Builds the paper's canonical 8-instruction loop payload:
 *  4 integer ops + 4 memory accesses. */
std::vector<InjectedOp> canonicalLoopPayload();

/** Builds a payload of @p n ops alternating store/add, as in the
 *  injection-size sweep (Sec. 5.5: 2, 4, 6, 8 instructions). */
std::vector<InjectedOp> storeAddPayload(std::size_t n);

/** All-on-chip payload (8 adds; Sec. 5.7). */
std::vector<InjectedOp> onChipPayload();

/** On-chip + off-chip payload (4 adds + 4 missing stores; Sec 5.7). */
std::vector<InjectedOp> offChipPayload();

} // namespace eddie::cpu

#endif // EDDIE_CPU_INJECTION_H
