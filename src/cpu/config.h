/**
 * @file
 * Core configuration, matching the knobs swept in the paper's
 * architecture-sensitivity study (Sec. 5.3): in-order vs out-of-order,
 * issue width, pipeline depth, and ROB size.
 */

#ifndef EDDIE_CPU_CONFIG_H
#define EDDIE_CPU_CONFIG_H

#include <cstdint>
#include <string>

#include "cache.h"

namespace eddie::cpu
{

/** Full core + memory configuration. */
struct CoreConfig
{
    /** Out-of-order (analytical ROB model) vs in-order. */
    bool out_of_order = false;
    /** Issue width (paper sweeps 1, 2, 4). */
    std::size_t issue_width = 2;
    /** Pipeline depth; sets the misprediction penalty. */
    std::size_t pipeline_depth = 8;
    /** Reorder buffer size (out-of-order only). */
    std::size_t rob_size = 64;

    /** Core clock in Hz. The default is a scaled-down stand-in for
     *  the paper's 1.008 GHz board / 1.8 GHz simulated core; ratios
     *  (sampling, window length) are preserved. */
    double clock_hz = 200e6;

    CacheConfig l1{32 * 1024, 4, 64};
    CacheConfig l2{256 * 1024, 8, 64};

    /** Load-to-use latencies per level, in cycles. */
    std::size_t l1_latency = 2;
    std::size_t l2_latency = 12;
    std::size_t dram_latency = 80;

    /** ALU op latencies. */
    std::size_t mul_latency = 3;
    std::size_t div_latency = 12;

    /** Memory image size in 64-bit words. */
    std::size_t memory_words = std::size_t(1) << 21;

    /** Power trace bucket width. The paper samples every 20 cycles
     *  at 1.8 GHz; at our scaled 200 MHz clock a 10-cycle bucket
     *  (20 MS/s) keeps the hot-loop frequencies below Nyquist. */
    std::uint64_t cycles_per_sample = 10;

    /**
     * Strength of the un-modeled timing variation: structural
     * hazards, bus contention, and slow DVFS/thermal wander.
     * Probability per instruction of a one-cycle issue delay; the
     * instantaneous probability is redrawn per epoch (several
     * thousand instructions) so per-iteration timing wanders on the
     * window timescale — the mechanism behind run-to-run spectral
     * variation on real hardware. Scaled further by the machine's
     * aggressiveness for out-of-order cores (see DESIGN.md).
     */
    double schedule_jitter = 0.02;
    /** Instructions per jitter epoch (the wander timescale). */
    std::size_t jitter_epoch_instrs = 8192;

    /**
     * OS timer-interrupt rate in Hz (0 disables). The paper's real
     * IoT device runs Linux, whose interrupts and system activity
     * occasionally produce "deviant" STSs (Sec. 4.4); its SESC
     * simulation has none, which is why Table 2 improves on Table 1.
     * Interrupt handlers execute a burst of kernel-like work that
     * also pollutes the caches.
     */
    double os_irq_rate_hz = 0.0;
    /** Mean dynamic ops per interrupt handler invocation. */
    std::size_t os_irq_ops = 1500;

    /** Safety valve for runaway programs. */
    std::uint64_t max_instructions = 200'000'000;

    /** Copy this many leading memory words into RunResult::memory
     *  (0 disables; used by tests to observe functional results). */
    std::size_t snapshot_words = 0;

    /** One-line description for experiment logs. */
    std::string describe() const;
};

} // namespace eddie::cpu

#endif // EDDIE_CPU_CONFIG_H
