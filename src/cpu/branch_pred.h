/**
 * @file
 * Gshare branch direction predictor.
 */

#ifndef EDDIE_CPU_BRANCH_PRED_H
#define EDDIE_CPU_BRANCH_PRED_H

#include <cstdint>
#include <vector>

namespace eddie::cpu
{

/** Gshare: global history XOR PC indexing a table of 2-bit counters. */
class BranchPredictor
{
  public:
    /** @param history_bits table has 2^history_bits counters */
    explicit BranchPredictor(std::size_t history_bits = 12);

    /** Predicts the direction of the branch at @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Updates counters and history with the resolved direction.
     *  @return true when the earlier prediction was correct. */
    bool update(std::uint64_t pc, bool taken);

    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::size_t index(std::uint64_t pc) const;

    std::size_t mask_;
    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace eddie::cpu

#endif // EDDIE_CPU_BRANCH_PRED_H
