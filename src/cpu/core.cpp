#include "core.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "power/power_trace.h"

namespace eddie::cpu
{

namespace
{

using prog::Instr;
using prog::kBoundary;
using prog::kNoRegion;
using prog::Opcode;

/**
 * Tracks per-cycle issue-slot occupancy in a sliding window so the
 * out-of-order model can place instructions in already-partially-used
 * cycles without unbounded memory.
 */
class SlotTracker
{
  public:
    SlotTracker(std::size_t width, std::size_t span = 8192)
        : width_(width), span_(span), cnt_(span, 0)
    {
    }

    /** Earliest cycle >= min_cycle with a free slot; claims it. */
    std::uint64_t
    alloc(std::uint64_t min_cycle)
    {
        std::uint64_t c = std::max(min_cycle, base_);
        if (c - base_ >= span_)
            advance(c - span_ + 1);
        while (cnt_[c % span_] >= width_) {
            ++c;
            if (c - base_ >= span_)
                advance(c - span_ + 1);
        }
        ++cnt_[c % span_];
        return c;
    }

  private:
    void
    advance(std::uint64_t new_base)
    {
        // Clear slots that fall out of the window.
        const std::uint64_t steps = std::min<std::uint64_t>(
            new_base - base_, span_);
        for (std::uint64_t i = 0; i < steps; ++i)
            cnt_[(base_ + i) % span_] = 0;
        base_ = new_base;
    }

    std::size_t width_;
    std::size_t span_;
    std::uint64_t base_ = 0;
    std::vector<std::uint16_t> cnt_;
};

/** Sentinel for "no instruction issued in this sample bucket yet". */
constexpr std::int64_t kUnmarked = -2;
/** Sentinel for "instruction outside any loop region". */
constexpr std::int64_t kNonLoop = -1;

/** Per-run execution engine; all mutable state lives here. */
class Runner
{
  public:
    Runner(const CoreConfig &cfg, const power::EnergyParams &eparams,
           const prog::Program &program, const prog::RegionGraph &regions,
           const MemoryImage &image, const InjectionPlan &plan,
           std::uint64_t seed)
        : cfg_(cfg),
          program_(program),
          regions_(regions),
          plan_(plan),
          energy_(eparams, cfg.l1.size_bytes, cfg.l2.size_bytes,
                  cfg.pipeline_depth),
          caches_(cfg.l1, cfg.l2),
          pred_(12),
          slots_(cfg.issue_width),
          trace_(cfg.cycles_per_sample, cfg.clock_hz),
          rng_(seed),
          mem_(cfg.memory_words, 0)
    {
        for (const auto &[addr, words] : image) {
            if (addr + words.size() > mem_.size())
                throw std::out_of_range("Core: memory image too large");
            std::copy(words.begin(), words.end(),
                      mem_.begin() + std::ptrdiff_t(addr));
        }
        commit_ring_.assign(std::max<std::size_t>(cfg.rob_size, 1), 0);

        // Effective structural-hazard jitter (see CoreConfig).
        // Dynamically scheduled cores have more un-modeled schedule
        // nondeterminism than in-order pipelines; the *per-parameter*
        // effects (e.g. deeper pipelines -> more misprediction
        // variance) arise naturally from the timing model itself, so
        // the synthetic part is a flat style-dependent factor.
        const double scale = cfg_.out_of_order ? 1.5 : 0.25;
        jitter_prob_ = std::min(cfg_.schedule_jitter * scale, 0.9);

        for (const auto &li : plan_.loops) {
            if (li.loop_region >= regions_.num_loops)
                throw std::out_of_range("Core: bad injected loop region");
            const auto hot =
                regions_.regions[li.loop_region].hot_header_instr;
            loop_inj_[hot] = &li;
        }
        burst_fired_.assign(plan_.bursts.size(), false);
        burst_count_.assign(plan_.bursts.size(), 0);

        // Injected off-chip accesses stride a large region placed in
        // the top half of memory.
        inj_miss_base_ = cfg_.memory_words / 2;
        inj_miss_span_ = std::min<std::uint64_t>(cfg_.memory_words / 4,
                                                 std::uint64_t(1) << 19);
        inj_hit_addr_ = cfg_.memory_words / 2 - 64;

        // OS interrupt model.
        kernel_base_ = cfg_.memory_words * 3 / 4;
        if (cfg_.os_irq_rate_hz > 0.0) {
            irq_interval_ = std::uint64_t(cfg_.clock_hz /
                                          cfg_.os_irq_rate_hz);
            scheduleNextIrq(0);
        }
    }

    RunResult run();

  private:
    // --- timing ----------------------------------------------------
    std::uint64_t
    jitter()
    {
        // Epoch-correlated: redraw the instantaneous delay
        // probability in [0, 2 * mean] every epoch so timing wanders
        // slowly (DVFS/thermal/contention), not just white noise.
        if (jitter_countdown_ == 0) {
            jitter_countdown_ = cfg_.jitter_epoch_instrs;
            cur_jitter_ = jitter_prob_ * 2.0 * coin_(rng_);
        }
        --jitter_countdown_;
        return coin_(rng_) < cur_jitter_ ? 1 : 0;
    }

    struct Issue
    {
        std::uint64_t issue = 0;
        std::uint64_t complete = 0;
    };

    /** Places one instruction in the schedule. */
    Issue
    issueOp(std::uint64_t ready, std::size_t latency)
    {
        Issue r;
        std::uint64_t min_cycle;
        if (cfg_.out_of_order) {
            const std::uint64_t rob_free =
                commit_ring_[instr_index_ % commit_ring_.size()];
            min_cycle = std::max({fetch_ready_, ready, rob_free});
        } else {
            min_cycle = std::max({fetch_ready_, ready, prev_issue_});
        }
        r.issue = slots_.alloc(min_cycle + jitter());
        r.complete = r.issue + latency;
        if (cfg_.out_of_order) {
            // In-order commit with issue-width commit bandwidth.
            std::uint64_t commit = std::max(r.complete + 1,
                                            last_commit_);
            if (commit == last_commit_) {
                if (++commits_in_cycle_ > cfg_.issue_width) {
                    ++commit;
                    commits_in_cycle_ = 1;
                }
            } else {
                commits_in_cycle_ = 1;
            }
            last_commit_ = commit;
            commit_ring_[instr_index_ % commit_ring_.size()] = commit;
        } else {
            prev_issue_ = r.issue;
        }
        ++instr_index_;
        end_cycle_ = std::max(end_cycle_, r.complete);
        return r;
    }

    /** Load-to-use latency of an access serviced at @p lvl. */
    std::size_t
    levelLatency(MemLevel lvl) const
    {
        switch (lvl) {
          case MemLevel::L1: return cfg_.l1_latency;
          case MemLevel::L2: return cfg_.l2_latency;
          case MemLevel::Dram: return cfg_.dram_latency;
        }
        return cfg_.l1_latency;
    }

    /** Deposits the energy of an access serviced at @p lvl. */
    void
    depositMem(MemLevel lvl, std::uint64_t at_cycle)
    {
        deposit(at_cycle, power::Event::L1Access);
        if (lvl == MemLevel::L2 || lvl == MemLevel::Dram)
            deposit(at_cycle + cfg_.l1_latency, power::Event::L2Access);
        if (lvl == MemLevel::Dram)
            deposit(at_cycle + cfg_.l2_latency, power::Event::DramAccess);
    }

    /** Memory access: cache lookup + energy; returns load latency. */
    std::size_t
    memAccess(std::uint64_t word_addr, std::uint64_t at_cycle)
    {
        const std::uint64_t byte_addr = word_addr << 3;
        const MemLevel lvl = caches_.access(byte_addr);
        depositMem(lvl, at_cycle);
        return levelLatency(lvl);
    }

    /** Partial in-order stall when a store misses: the store buffer
     *  absorbs some, but sustained misses back-pressure the pipe. */
    void
    storeMissStall(std::size_t lat, std::uint64_t issue)
    {
        if (!cfg_.out_of_order && lat > cfg_.l1_latency)
            fetch_ready_ = std::max(fetch_ready_, issue + lat / 2);
    }

    void
    deposit(std::uint64_t cycle, power::Event e)
    {
        trace_.deposit(cycle, energy_.eventEnergy(e));
    }

    // --- annotations ------------------------------------------------
    void
    ensureAnnot(std::uint64_t bucket)
    {
        if (bucket >= loop_mark_.size()) {
            loop_mark_.resize(bucket + 1, kUnmarked);
            injected_.resize(bucket + 1, 0);
        }
    }

    void
    markRegion(std::uint64_t cycle, std::size_t loop_region)
    {
        const std::uint64_t b = trace_.sampleOf(cycle);
        ensureAnnot(b);
        loop_mark_[b] = loop_region == kNoRegion ?
            kNonLoop : std::int64_t(loop_region);
    }

    void
    markInjected(std::uint64_t cycle)
    {
        const std::uint64_t b = trace_.sampleOf(cycle);
        ensureAnnot(b);
        injected_[b] = 1;
    }

    /** Marks every sample bucket an injected op occupies, including
     *  the cycles it stalls the pipeline. */
    void
    markInjectedRange(std::uint64_t from_cycle, std::uint64_t to_cycle)
    {
        const std::uint64_t b0 = trace_.sampleOf(from_cycle);
        const std::uint64_t b1 = trace_.sampleOf(to_cycle);
        ensureAnnot(b1);
        for (std::uint64_t b = b0; b <= b1; ++b)
            injected_[b] = 1;
    }

    // --- injection ---------------------------------------------------
    void
    injectOps(const std::vector<InjectedOp> &ops)
    {
        for (const InjectedOp op : ops) {
            Issue is;
            switch (op) {
              case InjectedOp::Add:
                is = issueOp(0, 1);
                deposit(is.issue, power::Event::IssueBase);
                deposit(is.issue, power::Event::AluOp);
                break;
              case InjectedOp::Mul:
                is = issueOp(0, cfg_.mul_latency);
                deposit(is.issue, power::Event::IssueBase);
                deposit(is.issue, power::Event::MulOp);
                break;
              case InjectedOp::StoreHit:
                is = issueOp(0, 1);
                deposit(is.issue, power::Event::IssueBase);
                memAccess(inj_hit_addr_, is.issue);
                break;
              case InjectedOp::StoreMiss:
              case InjectedOp::Load: {
                const std::uint64_t addr = inj_miss_base_ +
                    (inj_miss_cursor_ % inj_miss_span_);
                inj_miss_cursor_ += 8; // one cache line per access
                // Look up first (outcome is time-independent) so the
                // issue can carry the right latency.
                const MemLevel lvl = caches_.access(addr << 3);
                const std::size_t lat = levelLatency(lvl);
                is = issueOp(0, op == InjectedOp::Load ? lat : 1);
                deposit(is.issue, power::Event::IssueBase);
                depositMem(lvl, is.issue);
                if (op == InjectedOp::Load && !cfg_.out_of_order &&
                    lat > cfg_.l1_latency) {
                    fetch_ready_ = std::max(fetch_ready_, is.complete);
                }
                if (op == InjectedOp::StoreMiss)
                    storeMissStall(lat, is.issue);
                break;
              }
            }
            markInjectedRange(is.issue, is.complete);
            ++injected_ops_;
        }
    }

    // --- OS interrupts ------------------------------------------------
    void
    scheduleNextIrq(std::uint64_t from_cycle)
    {
        // +-50 % interval jitter, like a busy little OS.
        std::uniform_real_distribution<double> jitter_dist(0.5, 1.5);
        next_irq_cycle_ = from_cycle +
            std::uint64_t(double(irq_interval_) * jitter_dist(rng_));
    }

    /** Runs a kernel-ish burst of work: ALU ops plus strided kernel
     *  memory traffic that pollutes the caches. */
    void
    fireInterrupt()
    {
        std::uniform_real_distribution<double> len_dist(0.5, 1.5);
        const auto ops =
            std::size_t(double(cfg_.os_irq_ops) * len_dist(rng_));
        std::uint64_t last = 0;
        for (std::size_t k = 0; k < ops; ++k) {
            Issue is;
            if (k % 3 == 2) {
                const std::uint64_t addr = kernel_base_ +
                    (kernel_cursor_ % (std::uint64_t(1) << 15));
                kernel_cursor_ += 8;
                const MemLevel lvl = caches_.access(addr << 3);
                is = issueOp(0, levelLatency(lvl));
                deposit(is.issue, power::Event::IssueBase);
                depositMem(lvl, is.issue);
            } else {
                is = issueOp(0, 1);
                deposit(is.issue, power::Event::IssueBase);
                deposit(is.issue, power::Event::AluOp);
            }
            last = is.complete;
        }
        // Context-switch overhead.
        deposit(last, power::Event::PipelineFlush);
        fetch_ready_ = std::max(fetch_ready_, last);
        scheduleNextIrq(last);
    }

    void
    maybeFireBursts(bool entering_loop, std::size_t loop)
    {
        for (std::size_t i = 0; i < plan_.bursts.size(); ++i) {
            if (burst_fired_[i])
                continue;
            const BurstInjection &b = plan_.bursts[i];
            if (b.trigger_region >= regions_.regions.size())
                continue;
            const prog::Region &r = regions_.regions[b.trigger_region];
            bool triggers = false;
            if (r.kind == prog::Region::Kind::Loop) {
                triggers = entering_loop && r.loop == loop;
            } else {
                // Transition region: fire when its source loop exits.
                triggers = !entering_loop && r.from_loop == loop;
            }
            if (!triggers)
                continue;
            if (++burst_count_[i] < b.occurrence)
                continue;
            burst_fired_[i] = true;
            fireBurst(b);
        }
    }

    void
    fireBurst(const BurstInjection &b)
    {
        if (b.body.empty())
            return;
        std::uint64_t done = 0;
        while (done < b.total_ops) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(b.body.size(),
                                        b.total_ops - done);
            std::vector<InjectedOp> ops(b.body.begin(),
                                        b.body.begin() +
                                            std::ptrdiff_t(chunk));
            injectOps(ops);
            done += chunk;
        }
    }

    // --- region resolution -------------------------------------------
    void resolveRegions(RunResult &out) const;

    // --- members -----------------------------------------------------
    const CoreConfig &cfg_;
    const prog::Program &program_;
    const prog::RegionGraph &regions_;
    const InjectionPlan &plan_;
    power::EnergyModel energy_;
    CacheHierarchy caches_;
    BranchPredictor pred_;
    SlotTracker slots_;
    power::PowerTrace trace_;
    std::mt19937_64 rng_;
    std::uniform_real_distribution<double> coin_{0.0, 1.0};

    std::vector<std::int64_t> mem_;
    std::int64_t regs_[prog::kNumRegs] = {};
    std::uint64_t reg_ready_[prog::kNumRegs] = {};

    std::uint64_t fetch_ready_ = 0;
    std::uint64_t prev_issue_ = 0;
    std::uint64_t last_commit_ = 0;
    std::size_t commits_in_cycle_ = 0;
    std::vector<std::uint64_t> commit_ring_;
    std::uint64_t instr_index_ = 0;
    std::uint64_t end_cycle_ = 0;
    double jitter_prob_ = 0.0;
    double cur_jitter_ = 0.0;
    std::size_t jitter_countdown_ = 0;

    std::vector<std::int64_t> loop_mark_;
    std::vector<std::uint8_t> injected_;
    std::uint64_t injected_ops_ = 0;

    std::unordered_map<std::size_t, const LoopInjection *> loop_inj_;
    std::vector<std::uint8_t> burst_fired_;
    std::vector<std::size_t> burst_count_;
    std::uint64_t inj_miss_base_ = 0;
    std::uint64_t inj_miss_span_ = 1;
    std::uint64_t inj_miss_cursor_ = 0;
    std::uint64_t inj_hit_addr_ = 0;

    std::uint64_t irq_interval_ = 0;
    std::uint64_t next_irq_cycle_ = std::uint64_t(-1);
    std::uint64_t kernel_base_ = 0;
    std::uint64_t kernel_cursor_ = 0;
};

RunResult
Runner::run()
{
    const auto &code = program_.code;
    if (code.empty())
        throw std::invalid_argument("Core: empty program");

    std::size_t pc = 0;
    std::size_t cur_loop = kNoRegion;
    std::uint64_t retired = 0;
    bool halted = false;

    const std::uint64_t addr_mask = cfg_.memory_words - 1;

    while (!halted && retired < cfg_.max_instructions) {
        const Instr &in = code[pc];
        const std::size_t loop_region = regions_.loopRegionOf(pc);

        // Coarse region tracking for burst triggers.
        if (loop_region != cur_loop) {
            if (cur_loop != kNoRegion)
                maybeFireBursts(false, cur_loop);
            if (loop_region != kNoRegion)
                maybeFireBursts(true, loop_region);
            cur_loop = loop_region;
        }

        std::size_t next_pc = pc + 1;
        Issue is;

        switch (in.op) {
          case Opcode::Nop:
            is = issueOp(0, 1);
            deposit(is.issue, power::Event::IssueBase);
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr: {
            const std::uint64_t ready = std::max(reg_ready_[in.rs1],
                                                 reg_ready_[in.rs2]);
            is = issueOp(ready, 1);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue, power::Event::AluOp);
            const std::int64_t a = regs_[in.rs1];
            const std::int64_t b = regs_[in.rs2];
            std::int64_t v = 0;
            switch (in.op) {
              case Opcode::Add: v = a + b; break;
              case Opcode::Sub: v = a - b; break;
              case Opcode::And: v = a & b; break;
              case Opcode::Or: v = a | b; break;
              case Opcode::Xor: v = a ^ b; break;
              case Opcode::Shl: v = std::int64_t(std::uint64_t(a)
                                                 << (b & 63)); break;
              case Opcode::Shr: v = std::int64_t(std::uint64_t(a)
                                                 >> (b & 63)); break;
              default: break;
            }
            regs_[in.rd] = v;
            reg_ready_[in.rd] = is.complete;
            break;
          }
          case Opcode::Mul:
          case Opcode::Div: {
            const std::uint64_t ready = std::max(reg_ready_[in.rs1],
                                                 reg_ready_[in.rs2]);
            const bool mul = in.op == Opcode::Mul;
            is = issueOp(ready, mul ? cfg_.mul_latency : cfg_.div_latency);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue,
                    mul ? power::Event::MulOp : power::Event::DivOp);
            const std::int64_t a = regs_[in.rs1];
            const std::int64_t b = regs_[in.rs2];
            regs_[in.rd] = mul ? a * b : (b == 0 ? 0 : a / b);
            reg_ready_[in.rd] = is.complete;
            break;
          }
          case Opcode::Addi: {
            is = issueOp(reg_ready_[in.rs1], 1);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue, power::Event::AluOp);
            regs_[in.rd] = regs_[in.rs1] + in.imm;
            reg_ready_[in.rd] = is.complete;
            break;
          }
          case Opcode::Li: {
            is = issueOp(0, 1);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue, power::Event::AluOp);
            regs_[in.rd] = in.imm;
            reg_ready_[in.rd] = is.complete;
            break;
          }
          case Opcode::Ld: {
            const std::uint64_t addr =
                std::uint64_t(regs_[in.rs1] + in.imm) & addr_mask;
            is = issueOp(reg_ready_[in.rs1], 1);
            const std::size_t lat = memAccess(addr, is.issue);
            is.complete = is.issue + lat;
            end_cycle_ = std::max(end_cycle_, is.complete);
            deposit(is.issue, power::Event::IssueBase);
            regs_[in.rd] = mem_[addr];
            reg_ready_[in.rd] = is.complete;
            // Blocking cache on in-order cores.
            if (!cfg_.out_of_order && lat > cfg_.l1_latency)
                fetch_ready_ = std::max(fetch_ready_, is.complete);
            break;
          }
          case Opcode::St: {
            const std::uint64_t addr =
                std::uint64_t(regs_[in.rs1] + in.imm) & addr_mask;
            const std::uint64_t ready = std::max(reg_ready_[in.rs1],
                                                 reg_ready_[in.rs2]);
            is = issueOp(ready, 1);
            deposit(is.issue, power::Event::IssueBase);
            const std::size_t lat = memAccess(addr, is.issue);
            storeMissStall(lat, is.issue);
            mem_[addr] = regs_[in.rs2];
            break;
          }
          case Opcode::Jmp: {
            is = issueOp(0, 1);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue, power::Event::BranchOp);
            next_pc = std::size_t(in.imm);
            break;
          }
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge: {
            const std::uint64_t ready = std::max(reg_ready_[in.rs1],
                                                 reg_ready_[in.rs2]);
            is = issueOp(ready, 1);
            deposit(is.issue, power::Event::IssueBase);
            deposit(is.issue, power::Event::BranchOp);
            const std::int64_t a = regs_[in.rs1];
            const std::int64_t b = regs_[in.rs2];
            bool taken = false;
            switch (in.op) {
              case Opcode::Beq: taken = a == b; break;
              case Opcode::Bne: taken = a != b; break;
              case Opcode::Blt: taken = a < b; break;
              case Opcode::Bge: taken = a >= b; break;
              default: break;
            }
            const bool correct = pred_.update(pc, taken);
            if (!correct) {
                fetch_ready_ = std::max(fetch_ready_,
                                        is.complete +
                                            cfg_.pipeline_depth);
                deposit(is.complete, power::Event::PipelineFlush);
            }
            if (taken)
                next_pc = std::size_t(in.imm);
            break;
          }
          case Opcode::Halt:
            is = issueOp(0, 1);
            deposit(is.issue, power::Event::IssueBase);
            halted = true;
            break;
        }

        markRegion(is.issue, loop_region);
        ++retired;

        if (is.issue >= next_irq_cycle_)
            fireInterrupt();

        // Loop-body injection at iteration boundaries: a control
        // transfer landing on the nest's hot header.
        if (!halted && next_pc != pc + 1) {
            const auto it = loop_inj_.find(next_pc);
            if (it != loop_inj_.end() &&
                coin_(rng_) < it->second->contamination) {
                injectOps(it->second->ops);
            }
        }

        pc = next_pc;
        if (pc >= code.size())
            halted = true;
    }

    trace_.finalize(end_cycle_, energy_.baselinePerCycle());

    RunResult out;
    out.sample_rate = trace_.sampleRate();
    out.power = trace_.takeSamples();
    resolveRegions(out);
    out.injected = injected_;
    out.injected.resize(out.power.size(), 0);

    out.final_regs.assign(regs_, regs_ + prog::kNumRegs);
    if (cfg_.snapshot_words > 0) {
        const std::size_t n_snap = std::min<std::size_t>(
            cfg_.snapshot_words, mem_.size());
        out.memory.assign(mem_.begin(),
                          mem_.begin() + std::ptrdiff_t(n_snap));
    }

    out.stats.instructions = retired;
    out.stats.injected_ops = injected_ops_;
    out.stats.cycles = end_cycle_;
    out.stats.l1_hits = caches_.l1().hits();
    out.stats.l1_misses = caches_.l1().misses();
    out.stats.l2_hits = caches_.l2().hits();
    out.stats.l2_misses = caches_.l2().misses();
    out.stats.branches = pred_.lookups();
    out.stats.mispredicts = pred_.mispredicts();
    return out;
}

void
Runner::resolveRegions(RunResult &out) const
{
    const std::size_t n = out.power.size();
    std::vector<std::int64_t> marks(loop_mark_);
    marks.resize(n, kUnmarked);

    // Fill sample gaps with the preceding mark.
    std::int64_t prev = kNonLoop;
    for (auto &m : marks) {
        if (m == kUnmarked)
            m = prev;
        else
            prev = m;
    }

    // Turn non-loop runs into transition regions.
    out.region.assign(n, kNoRegion);
    std::size_t i = 0;
    std::size_t prev_loop = kBoundary;
    while (i < n) {
        if (marks[i] >= 0) {
            const auto loop = std::size_t(marks[i]);
            out.region[i] = loop; // loop region ids equal loop index
            prev_loop = loop;
            ++i;
            continue;
        }
        // Non-loop run [i, j).
        std::size_t j = i;
        while (j < n && marks[j] < 0)
            ++j;
        const std::size_t next_loop =
            j < n ? std::size_t(marks[j]) : kBoundary;
        const std::size_t trans = regions_.transitionId(prev_loop,
                                                        next_loop);
        for (std::size_t k = i; k < j; ++k)
            out.region[k] = trans;
        i = j;
    }
}

} // namespace

Core::Core(const CoreConfig &config, const power::EnergyParams &energy)
    : config_(config), energy_params_(energy)
{
    if (config_.issue_width == 0)
        throw std::invalid_argument("Core: issue width must be > 0");
    if ((config_.memory_words & (config_.memory_words - 1)) != 0)
        throw std::invalid_argument("Core: memory_words must be pow2");
}

RunResult
Core::run(const prog::Program &program, const prog::RegionGraph &regions,
          const MemoryImage &image, const InjectionPlan &plan,
          std::uint64_t seed)
{
    Runner runner(config_, energy_params_, program, regions, image, plan,
                  seed);
    return runner.run();
}

} // namespace eddie::cpu
