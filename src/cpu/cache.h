/**
 * @file
 * Set-associative cache with LRU replacement, and a two-level
 * hierarchy returning the level that serviced each access.
 */

#ifndef EDDIE_CPU_CACHE_H
#define EDDIE_CPU_CACHE_H

#include <cstdint>
#include <vector>

namespace eddie::cpu
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::size_t size_bytes = 32 * 1024;
    std::size_t assoc = 4;
    std::size_t line_bytes = 64;
};

/** A single set-associative cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Looks up @p addr (byte address); inserts on miss.
     *  @return true on hit. */
    bool access(std::uint64_t addr);

    /** Drops all contents (used between simulated runs). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::size_t num_sets_;
    std::vector<Line> lines_; // num_sets_ * assoc
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Which level serviced a memory access. */
enum class MemLevel
{
    L1,
    L2,
    Dram,
};

/** L1 + L2 hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2);

    /** Accesses the hierarchy; allocates in both levels on miss. */
    MemLevel access(std::uint64_t addr);

    void flush();

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

  private:
    Cache l1_;
    Cache l2_;
};

} // namespace eddie::cpu

#endif // EDDIE_CPU_CACHE_H
