/**
 * @file
 * The simulated core: combined functional execution and analytical
 * timing model (in-order or out-of-order), producing a power trace
 * with ground-truth region and injection annotations.
 *
 * Plays the role of both the A13-OLinuXino board and the SESC
 * simulator of the paper (see DESIGN.md substitution table).
 */

#ifndef EDDIE_CPU_CORE_H
#define EDDIE_CPU_CORE_H

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "branch_pred.h"
#include "cache.h"
#include "config.h"
#include "injection.h"
#include "power/energy_model.h"
#include "prog/program.h"
#include "prog/regions.h"
#include "run_result.h"

namespace eddie::cpu
{

/** Initial memory contents: (word address, words) segments. */
using MemoryImage =
    std::vector<std::pair<std::uint64_t, std::vector<std::int64_t>>>;

/**
 * Executes programs under a configurable timing model.
 *
 * A Core is reusable; every run() starts from cold caches, a reset
 * predictor, and a fresh memory image.
 */
class Core
{
  public:
    explicit Core(const CoreConfig &config,
                  const power::EnergyParams &energy = power::EnergyParams());

    /**
     * Runs @p program to Halt (or the instruction cap).
     *
     * @param regions region analysis of @p program (for ground-truth
     *        labels and injection triggers)
     * @param image initial memory contents
     * @param plan dynamic-stream injection plan (may be empty)
     * @param seed seed for timing jitter and injection randomness
     */
    RunResult run(const prog::Program &program,
                  const prog::RegionGraph &regions,
                  const MemoryImage &image,
                  const InjectionPlan &plan = InjectionPlan(),
                  std::uint64_t seed = 1);

    const CoreConfig &config() const { return config_; }

  private:
    CoreConfig config_;
    power::EnergyParams energy_params_;
};

} // namespace eddie::cpu

#endif // EDDIE_CPU_CORE_H
