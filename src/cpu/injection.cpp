#include "injection.h"

namespace eddie::cpu
{

std::vector<InjectedOp>
canonicalLoopPayload()
{
    return {InjectedOp::Add,      InjectedOp::Load, InjectedOp::Add,
            InjectedOp::StoreHit, InjectedOp::Add,  InjectedOp::Load,
            InjectedOp::Add,      InjectedOp::StoreHit};
}

std::vector<InjectedOp>
storeAddPayload(std::size_t n)
{
    std::vector<InjectedOp> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(i % 2 == 0 ? InjectedOp::StoreHit : InjectedOp::Add);
    return ops;
}

std::vector<InjectedOp>
onChipPayload()
{
    return std::vector<InjectedOp>(8, InjectedOp::Add);
}

std::vector<InjectedOp>
offChipPayload()
{
    return {InjectedOp::Add,       InjectedOp::StoreMiss, InjectedOp::Add,
            InjectedOp::StoreMiss, InjectedOp::Add,       InjectedOp::StoreMiss,
            InjectedOp::Add,       InjectedOp::StoreMiss};
}

} // namespace eddie::cpu
