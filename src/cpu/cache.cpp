#include "cache.h"

#include <stdexcept>

namespace eddie::cpu
{

namespace
{

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (config_.line_bytes == 0 || !isPow2(config_.line_bytes))
        throw std::invalid_argument("Cache: line size must be power of 2");
    if (config_.assoc == 0)
        throw std::invalid_argument("Cache: associativity must be > 0");
    const std::size_t lines = config_.size_bytes / config_.line_bytes;
    if (lines == 0 || lines % config_.assoc != 0)
        throw std::invalid_argument("Cache: bad geometry");
    num_sets_ = lines / config_.assoc;
    if (!isPow2(num_sets_))
        throw std::invalid_argument("Cache: set count must be power of 2");
    lines_.assign(lines, Line{});
}

bool
Cache::access(std::uint64_t addr)
{
    const std::uint64_t line_addr = addr / config_.line_bytes;
    const std::size_t set = std::size_t(line_addr) & (num_sets_ - 1);
    const std::uint64_t tag = line_addr / num_sets_;
    Line *base = &lines_[set * config_.assoc];
    ++tick_;

    for (std::size_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    // Victim: invalid way, else least recently used.
    std::size_t victim = 0;
    std::uint64_t best = std::uint64_t(-1);
    for (std::size_t w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lru < best) {
            best = base[w].lru;
            victim = w;
        }
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lru = tick_;
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
    tick_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2)
    : l1_(l1), l2_(l2)
{
}

MemLevel
CacheHierarchy::access(std::uint64_t addr)
{
    if (l1_.access(addr))
        return MemLevel::L1;
    if (l2_.access(addr))
        return MemLevel::L2;
    return MemLevel::Dram;
}

void
CacheHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
}

} // namespace eddie::cpu
