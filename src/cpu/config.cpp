#include "config.h"

#include <sstream>

namespace eddie::cpu
{

std::string
CoreConfig::describe() const
{
    std::ostringstream os;
    os << (out_of_order ? "ooo" : "inorder") << " w" << issue_width
       << " d" << pipeline_depth;
    if (out_of_order)
        os << " rob" << rob_size;
    os << " L1:" << l1.size_bytes / 1024 << "K L2:"
       << l2.size_bytes / 1024 << "K @" << clock_hz / 1e6 << "MHz";
    return os.str();
}

} // namespace eddie::cpu
