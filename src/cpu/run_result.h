/**
 * @file
 * Output of one simulated run: the sampled power trace plus aligned
 * ground-truth region and injection annotations.
 */

#ifndef EDDIE_CPU_RUN_RESULT_H
#define EDDIE_CPU_RUN_RESULT_H

#include <cstdint>
#include <vector>

namespace eddie::cpu
{

/** Aggregate counters of one run. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t injected_ops = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
};

/** One simulated run. */
struct RunResult
{
    /** Power samples, one per cycles_per_sample cycles. */
    std::vector<double> power;
    /**
     * Ground-truth region id per sample (loop regions and resolved
     * transition regions; prog::kNoRegion where unresolvable).
     */
    std::vector<std::size_t> region;
    /** 1 where the sample contains injected activity. */
    std::vector<std::uint8_t> injected;
    /** Sample rate of `power`, Hz. */
    double sample_rate = 0.0;
    /** Final architectural register values (for tests/debugging). */
    std::vector<std::int64_t> final_regs;
    /** Copy of the first CoreConfig::snapshot_words memory words. */
    std::vector<std::int64_t> memory;
    CoreStats stats;
};

} // namespace eddie::cpu

#endif // EDDIE_CPU_RUN_RESULT_H
