#include "branch_pred.h"

#include <algorithm>
#include <stdexcept>

namespace eddie::cpu
{

BranchPredictor::BranchPredictor(std::size_t history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        throw std::invalid_argument("BranchPredictor: bad history bits");
    const std::size_t entries = std::size_t(1) << history_bits;
    mask_ = entries - 1;
    table_.assign(entries, 1); // weakly not-taken
}

std::size_t
BranchPredictor::index(std::uint64_t pc) const
{
    return std::size_t(pc ^ history_) & mask_;
}

bool
BranchPredictor::predict(std::uint64_t pc) const
{
    return table_[index(pc)] >= 2;
}

bool
BranchPredictor::update(std::uint64_t pc, bool taken)
{
    const std::size_t i = index(pc);
    const bool predicted = table_[i] >= 2;
    if (taken && table_[i] < 3)
        ++table_[i];
    else if (!taken && table_[i] > 0)
        --table_[i];
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
    ++lookups_;
    const bool correct = predicted == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 1);
    history_ = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace eddie::cpu
