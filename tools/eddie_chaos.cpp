/**
 * @file
 * eddie_chaos — deterministic chaos soak for the multi-tenant fleet
 * runtime (serve/chaos.h).
 *
 *   eddie_chaos [--seed N | --seeds N [--first F]]
 *       [--tenants T] [--sessions S] [--steps W]
 *       [--kill-prob P] [--hang-prob P] [--budget N]
 *       [--arc | --files] [--dir DIR] [--keep]
 *       [--scheduler [--workers M]] [--wire] [--require-all-fates]
 *
 * Each seed runs the full scenario: a faulted fleet run (worker
 * kills/hangs on the victim tenant, queue overflow, starvation), a
 * torn-commit resume, and a corrupt-snapshot resume, asserting that
 * healthy tenants' verdicts stay bit-identical to a clean serial run,
 * restarts stay inside the victim's budget, and recovery from disk is
 * clean. Without --arc/--files the checkpoint layout alternates by
 * seed parity so both are covered. --scheduler runs every fleet phase
 * through the fair-share FleetScheduler (--workers M threads, default
 * 3) instead of the legacy thread pair — same fates, same invariants,
 * so a grid on both paths proves the runtimes verdict-identical.
 * --wire adds phase W: every session streams over a live socket
 * (TCP loopback or AF_UNIX, by seed) through a WireListener, with the
 * client injecting byte-level faults — torn frames, mid-batch
 * disconnects, duplicate/skip-ahead replays, corrupted bytes, hostile
 * length fields — and the harness asserting the wire verdicts stay
 * bit-identical to the serial run anyway. --require-all-fates
 * additionally demands that every fate class actually fired somewhere
 * in the grid (the acceptance bar for the CI soak); with --wire the
 * wire fate classes join the required set.
 *
 * Exit codes: 0 clean, 2 usage, 3 invariant violations, 4 a required
 * fate class never fired.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/chaos.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (!args.positional().empty()) {
        std::fprintf(
            stderr,
            "usage: eddie_chaos [--seed N | --seeds N [--first F]] "
            "[--tenants T] [--sessions S]\n"
            "       [--steps W] [--kill-prob P] [--hang-prob P] "
            "[--budget N] [--arc | --files]\n"
            "       [--dir DIR] [--keep] [--scheduler [--workers M]] "
            "[--require-all-fates]\n");
        return 2;
    }

    const long grid = std::max(args.getLong("seeds", 1), 1L);
    const long first = args.getLong("first", 1);

    serve::ChaosConfig base;
    base.tenants =
        std::size_t(std::max(args.getLong("tenants", 3), 2L));
    base.sessions_per_tenant =
        std::size_t(std::max(args.getLong("sessions", 1), 1L));
    base.stream_len =
        std::size_t(std::max(args.getLong("steps", 160), 16L));
    base.kill_prob = args.getDouble("kill-prob", base.kill_prob);
    base.hang_prob = args.getDouble("hang-prob", base.hang_prob);
    base.restart_budget = std::size_t(std::max(
        args.getLong("budget", long(base.restart_budget)), 1L));
    if (args.has("scheduler") || args.has("workers"))
        base.scheduler_workers =
            std::size_t(std::max(args.getLong("workers", 3), 1L));
    if (args.has("wire")) {
        base.wire_phase = true;
        // Every wire fate class on, hot enough that a modest grid
        // exercises each (the per-sequence cap bounds the damage).
        base.wire.tear_prob = 0.05;
        base.wire.disconnect_prob = 0.05;
        base.wire.duplicate_prob = 0.05;
        base.wire.reorder_prob = 0.04;
        base.wire.corrupt_prob = 0.04;
        base.wire.hostile_len_prob = 0.03;
    }

    // Scratch root: --dir or a fresh mkdtemp under the system tmpdir.
    std::string root = args.get("dir");
    bool made_root = false;
    if (root.empty()) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() / "eddie_chaos")
                .string() +
            ".XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) == nullptr) {
            std::fprintf(stderr,
                         "eddie_chaos: cannot create scratch dir\n");
            return 1;
        }
        root = buf.data();
        made_root = true;
    } else {
        std::filesystem::create_directories(root);
    }

    serve::ChaosReport total;
    std::size_t failed_seeds = 0;
    for (long i = 0; i < grid; ++i) {
        serve::ChaosConfig cfg = base;
        cfg.seed = std::uint64_t(first + i);
        // Cover both checkpoint layouts across the grid.
        cfg.archive = args.has("files") ? false
                      : args.has("arc") ? true
                                        : (cfg.seed % 2 == 0);
        cfg.dir = root + "/s" + std::to_string(cfg.seed);
        std::filesystem::create_directories(cfg.dir);

        const serve::ChaosReport rep = serve::runChaos(cfg);
        std::printf("seed %llu [%s, %s]: %s\n",
                    static_cast<unsigned long long>(cfg.seed),
                    cfg.archive ? "arc" : "files",
                    cfg.scheduler_workers > 0 ? "sched" : "pair",
                    serve::describe(rep).c_str());
        for (const std::string &v : rep.violations)
            std::printf("  VIOLATION: %s\n", v.c_str());
        if (!rep.ok)
            ++failed_seeds;

        total.kills += rep.kills;
        total.hangs += rep.hangs;
        total.blocked_pushes += rep.blocked_pushes;
        total.windows_throttled += rep.windows_throttled;
        total.windows_shed += rep.windows_shed;
        total.torn_bytes += rep.torn_bytes;
        total.corrupted_snapshots += rep.corrupted_snapshots;
        total.restarts += rep.restarts;
        total.breaker_trips += rep.breaker_trips;
        total.escalations += rep.escalations;
        total.snapshot_decode_failures += rep.snapshot_decode_failures;
        total.healthy_sessions_checked += rep.healthy_sessions_checked;
        total.wire_torn_frames += rep.wire_torn_frames;
        total.wire_disconnects += rep.wire_disconnects;
        total.wire_duplicates += rep.wire_duplicates;
        total.wire_reorders += rep.wire_reorders;
        total.wire_corrupt_frames += rep.wire_corrupt_frames;
        total.wire_hostile_lengths += rep.wire_hostile_lengths;
        total.wire_reconnects += rep.wire_reconnects;
        total.wire_nacks += rep.wire_nacks;
        total.wire_windows_replayed += rep.wire_windows_replayed;
        total.wire_malformed += rep.wire_malformed;
        total.wire_duplicates_dropped += rep.wire_duplicates_dropped;
        total.wire_sessions_checked += rep.wire_sessions_checked;
    }

    if (!args.has("keep") && made_root) {
        std::error_code ec;
        std::filesystem::remove_all(root, ec);
    } else {
        std::printf("scratch kept at %s\n", root.c_str());
    }

    std::printf("soak: %ld seeds, %zu failed; %s\n", grid,
                failed_seeds, serve::describe(total).c_str());
    if (failed_seeds > 0)
        return 3;

    if (args.has("require-all-fates")) {
        struct FateClass
        {
            const char *fate;
            std::uint64_t count;
        };
        std::vector<FateClass> classes = {
            {"worker-kill", total.kills},
            {"worker-hang", total.hangs},
            {"queue-overflow", total.blocked_pushes},
            {"starvation-throttle", total.windows_throttled},
            {"starvation-shed", total.windows_shed},
            {"torn-commit", total.torn_bytes},
            {"corrupt-checkpoint", total.corrupted_snapshots},
        };
        if (args.has("wire")) {
            classes.push_back({"wire-tear", total.wire_torn_frames});
            classes.push_back(
                {"wire-disconnect", total.wire_disconnects});
            classes.push_back(
                {"wire-duplicate", total.wire_duplicates});
            classes.push_back({"wire-reorder", total.wire_reorders});
            classes.push_back(
                {"wire-corrupt", total.wire_corrupt_frames});
            classes.push_back(
                {"wire-hostile-length", total.wire_hostile_lengths});
            classes.push_back(
                {"wire-reconnect", total.wire_reconnects});
            classes.push_back(
                {"wire-malformed-rejected", total.wire_malformed});
        }
        bool missing = false;
        for (const FateClass &c : classes) {
            if (c.count == 0) {
                std::printf("fate class never exercised: %s\n",
                            c.fate);
                missing = true;
            }
        }
        if (missing)
            return 4;
        std::printf("all fate classes exercised\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_chaos",
                                 [&] { return run(argc, argv); });
}
