/**
 * @file
 * eddie_capture — simulate one run of a workload and record the
 * sampled signal (with ground-truth annotations) to a capture file
 * for offline analysis with eddie_analyze.
 *
 *   eddie_capture <workload> <capture-file>
 *       [--scale S] [--seed N]
 *       [--inject loop|burst] [--payload N] [--contamination R]
 *       [--target REGION] [--sts]
 *
 * --sts writes the extracted STS window stream ("EDDIESTS") instead
 * of the raw sampled signal — the input format of eddie_replay's
 * --capture and serve::StsFileSource.
 */

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "core/capture_io.h"
#include "core/errors.h"
#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: eddie_capture <workload> <capture-file> "
                     "[--scale S] [--seed N]\n"
                     "       [--inject loop|burst] [--payload N] "
                     "[--contamination R] [--target REGION] "
                     "[--sts]\n");
        return 2;
    }
    auto workload = workloads::makeWorkload(
        args.positional()[0], args.getDouble("scale", 1.0));
    const auto seed = std::uint64_t(args.getLong("seed", 42));
    const auto target = args.has("target") ?
        std::size_t(args.getLong("target", 0)) :
        inject::defaultTargetLoop(workload);

    cpu::InjectionPlan plan;
    const std::string inject = args.get("inject");
    if (inject == "loop") {
        plan = inject::loopPayload(
            target, std::size_t(args.getLong("payload", 8)),
            args.getDouble("contamination", 1.0), seed);
    } else if (inject == "burst") {
        plan = inject::burstOfSize(
            workload, target,
            std::uint64_t(args.getLong("payload", 476'000)), 1, seed);
    } else if (!inject.empty()) {
        std::fprintf(stderr, "unknown --inject kind '%s'\n",
                     inject.c_str());
        return 2;
    }

    core::PipelineConfig cfg;
    core::Pipeline pipe(std::move(workload), cfg);
    if (args.has("sts")) {
        const auto stream = pipe.captureRunShared(seed, plan);
        errno = 0;
        std::ofstream os(args.positional()[1], std::ios::binary);
        if (!os)
            throw core::ioErrorErrno("sts stream: open for write",
                                     args.positional()[1]);
        core::saveStsStream(*stream, os);
        os.flush();
        if (!os)
            throw core::ioErrorErrno("sts stream: write",
                                     args.positional()[1]);
        std::printf("captured %zu STS windows -> %s\n", stream->size(),
                    args.positional()[1].c_str());
        return 0;
    }
    const auto rr = pipe.simulate(seed, plan);
    core::saveCaptureFile(rr, args.positional()[1]);
    std::printf("captured %zu samples at %.1f MS/s (%llu "
                "instructions, %llu injected ops) -> %s\n",
                rr.power.size(), rr.sample_rate / 1e6,
                static_cast<unsigned long long>(rr.stats.instructions),
                static_cast<unsigned long long>(rr.stats.injected_ops),
                args.positional()[1].c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_capture",
                                 [&] { return run(argc, argv); });
}
