/**
 * @file
 * eddie_inspect — print a human-readable summary of a trained model.
 *
 *   eddie_inspect <model-file> [--histogram REGION]
 */

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/model.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 1) {
        std::fprintf(stderr, "usage: eddie_inspect <model-file> "
                             "[--histogram REGION]\n");
        return 2;
    }
    // Sniffs text vs EDDIEARC archive models.
    const auto model = core::loadModelFile(args.positional()[0]);

    std::printf("EDDIE model: %zu regions (%zu loop regions), "
                "alpha=%.3g, entry=%s\n",
                model.regions.size(), model.num_loops, model.alpha,
                model.entry_region < model.regions.size() ?
                    model.regions[model.entry_region].name.c_str() :
                    "?");
    std::printf("%-14s %8s %7s %6s %9s %10s\n", "region", "trained",
                "peaks", "n", "ref/rank", "successors");
    for (const auto &r : model.regions) {
        std::string succs;
        for (auto s : r.succs) {
            succs += model.regions[s].name;
            succs += ' ';
        }
        std::printf("%-14s %8s %7zu %6zu %9zu %s\n", r.name.c_str(),
                    r.trained ? "yes" : "no", r.num_peaks, r.group_n,
                    r.ref.empty() ? 0 : r.ref[0].size(),
                    succs.c_str());
    }

    if (args.has("histogram")) {
        const auto idx = std::size_t(args.getLong("histogram", 0));
        if (idx >= model.regions.size() ||
            !model.regions[idx].trained) {
            std::fprintf(stderr, "region %zu not trained\n", idx);
            return 1;
        }
        const auto &ref = model.regions[idx].ref[0];
        std::printf("\nstrongest-peak distribution of %s:\n",
                    model.regions[idx].name.c_str());
        const double lo = ref.front(), hi = ref.back();
        const int bins = 20;
        std::vector<int> hist(bins, 0);
        for (double v : ref) {
            const int b = int((v - lo) / (hi - lo + 1e-9) * bins);
            ++hist[std::clamp(b, 0, bins - 1)];
        }
        int peak = 1;
        for (int c : hist)
            peak = std::max(peak, c);
        for (int b = 0; b < bins; ++b) {
            std::printf("%10.0f kHz |",
                        (lo + (hi - lo) * (b + 0.5) / bins) / 1e3);
            for (int s = 0; s < hist[b] * 50 / peak; ++s)
                std::putchar('#');
            std::putchar('\n');
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_inspect",
                                 [&] { return run(argc, argv); });
}
