/**
 * @file
 * eddie_analyze — run EDDIE's monitor over a recorded capture file
 * against a trained model, entirely offline.
 *
 *   eddie_analyze <model-file> <capture-file> <workload>
 *       [--scale S] [--em] [--snr DB]
 *
 * The workload (and scale) are needed only for the region state
 * machine; the signal itself comes from the capture.
 */

#include <cstdio>
#include <fstream>

#include "core/capture_io.h"
#include "core/pipeline.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 3) {
        std::fprintf(stderr,
                     "usage: eddie_analyze <model-file> "
                     "<capture-file> <workload> [--scale S] [--em] "
                     "[--snr DB]\n");
        return 2;
    }
    // Sniffs text vs EDDIEARC archive models.
    const auto model = core::loadModelFile(args.positional()[0]);
    const auto capture = core::loadCaptureFile(args.positional()[1]);

    core::PipelineConfig cfg;
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
    }
    core::Pipeline pipe(
        workloads::makeWorkload(args.positional()[2],
                                args.getDouble("scale", 1.0)),
        cfg);

    const auto stream = pipe.toSts(capture);
    core::Monitor mon(model, cfg.monitor);
    for (const auto &sts : stream)
        mon.step(sts);
    const auto metrics = core::scoreRun(stream, mon.records(),
                                        mon.reports(), model);

    std::printf("capture: %zu samples (%.1f ms) -> %zu STS windows\n",
                capture.power.size(),
                1e3 * double(capture.power.size()) /
                    capture.sample_rate,
                stream.size());
    std::printf("anomaly reports: %zu\n", mon.reports().size());
    for (std::size_t i = 0; i < mon.reports().size() && i < 10; ++i) {
        const auto &r = mon.reports()[i];
        std::printf("  t=%8.3f ms while tracking %s\n", r.time * 1e3,
                    model.regions[r.region].name.c_str());
    }
    if (mon.reports().size() > 10)
        std::printf("  ... and %zu more\n", mon.reports().size() - 10);
    if (metrics.injected_groups > 0) {
        std::printf("injected windows: %zu, reported: %zu\n",
                    metrics.injected_groups, metrics.true_positives);
        if (metrics.detection_latency >= 0.0) {
            std::printf("detection latency: %.2f ms\n",
                        metrics.detection_latency * 1e3);
        }
    }
    return mon.reports().empty() ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_analyze",
                                 [&] { return run(argc, argv); });
}
