/**
 * @file
 * eddie_replay — stream STS windows into a listening eddie_serve over
 * the EDDIEWIRE protocol (DESIGN.md §11). The sender half of the wire
 * ingestion path: it survives disconnects with capped-exponential
 * backoff and replays from the server's last ACK, so delivery is
 * exactly-once in-order end to end.
 *
 *   eddie_replay (--capture FILE | --workload NAME)
 *       (--connect HOST:PORT | --connect-pipe PATH)
 *       [--tenant ID] [--session N] [--batch N]
 *       [--scale S] [--seed N] [--inject loop|burst] [--payload N]
 *       [--contamination R] [--target REGION]
 *       [--chaos-seed N] [--tear-prob P] [--disconnect-prob P]
 *       [--duplicate-prob P] [--reorder-prob P] [--corrupt-prob P]
 *       [--hostile-prob P]
 *
 * --capture streams a saved "EDDIESTS" stream file (eddie_capture's
 * --sts output or any saveStsStream artifact); --workload captures a
 * synthetic run in-process first (same pipeline flags as
 * eddie_serve). --chaos-seed arms deterministic byte-level fault
 * injection — torn frames, forced disconnects, duplicated and
 * skip-ahead replays, corrupted bytes, hostile length fields — with
 * the standard chaos mix unless individual --*-prob flags override
 * it; the server must reject every faulted frame and still converge
 * on bit-identical verdicts.
 *
 * Exit codes: 0 delivered in full, 2 usage, 6 the stream could not be
 * delivered (fatal NACK, attempts exhausted).
 */

#include <cstdio>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "serve/sample_source.h"
#include "serve/wire_client.h"
#include "signal_util.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    const std::string capture = args.get("capture");
    const std::string workload_name = args.get("workload");
    const std::string tcp = args.get("connect");
    const std::string pipe = args.get("connect-pipe");
    if (!args.positional().empty() ||
        (capture.empty() == workload_name.empty()) ||
        (tcp.empty() == pipe.empty())) {
        std::fprintf(
            stderr,
            "usage: eddie_replay (--capture FILE | --workload NAME) "
            "(--connect HOST:PORT | --connect-pipe PATH)\n"
            "       [--tenant ID] [--session N] [--batch N] "
            "[--scale S] [--seed N]\n"
            "       [--inject loop|burst] [--payload N] "
            "[--contamination R] [--target REGION]\n"
            "       [--chaos-seed N] [--tear-prob P] "
            "[--disconnect-prob P] [--duplicate-prob P]\n"
            "       [--reorder-prob P] [--corrupt-prob P] "
            "[--hostile-prob P]\n");
        return 2;
    }

    tools::ignoreSigpipe();
    tools::handleStopSignals();

    std::unique_ptr<serve::SampleSource> source;
    if (!capture.empty()) {
        source = std::make_unique<serve::StsFileSource>(capture);
    } else {
        auto workload = workloads::makeWorkload(
            workload_name, args.getDouble("scale", 1.0));
        const auto target =
            args.has("target")
                ? std::size_t(args.getLong("target", 0))
                : inject::defaultTargetLoop(workload);
        const auto seed = std::uint64_t(args.getLong("seed", 42));
        cpu::InjectionPlan plan;
        const std::string inject = args.get("inject");
        if (inject == "loop") {
            plan = inject::loopPayload(
                target, std::size_t(args.getLong("payload", 8)),
                args.getDouble("contamination", 1.0), seed);
        } else if (inject == "burst") {
            plan = inject::burstOfSize(
                workload, target,
                std::uint64_t(args.getLong("payload", 476'000)), 1,
                seed);
        } else if (!inject.empty()) {
            std::fprintf(stderr, "unknown --inject kind '%s'\n",
                         inject.c_str());
            return 2;
        }
        core::Pipeline pipe_cfg(std::move(workload),
                                core::PipelineConfig{});
        source = std::make_unique<serve::VectorSource>(
            pipe_cfg.captureRunShared(seed, plan));
    }

    serve::WireClientConfig cfg;
    cfg.tcp = tcp;
    cfg.unix_path = pipe;
    cfg.tenant = args.get("tenant", "default");
    cfg.session = std::uint64_t(args.getLong("session", 1));
    cfg.batch_windows =
        std::size_t(std::max(args.getLong("batch", 32), 1L));
    if (args.has("chaos-seed")) {
        cfg.chaos.seed = std::uint64_t(args.getLong("chaos-seed", 1));
        cfg.chaos.tear_prob = args.getDouble("tear-prob", 0.05);
        cfg.chaos.disconnect_prob =
            args.getDouble("disconnect-prob", 0.05);
        cfg.chaos.duplicate_prob =
            args.getDouble("duplicate-prob", 0.05);
        cfg.chaos.reorder_prob = args.getDouble("reorder-prob", 0.04);
        cfg.chaos.corrupt_prob = args.getDouble("corrupt-prob", 0.04);
        cfg.chaos.hostile_len_prob =
            args.getDouble("hostile-prob", 0.03);
    }

    serve::WireClient client(cfg);
    const serve::WireClientReport rep = client.stream(*source);

    std::printf(
        "replay: %s; %llu windows in %llu batches (%llu bytes), "
        "%llu connects (%llu reconnects), %llu windows replayed, "
        "%llu nacks\n",
        rep.delivered_all ? "delivered" : "FAILED",
        (unsigned long long)rep.windows_sent,
        (unsigned long long)rep.batches_sent,
        (unsigned long long)rep.bytes_sent,
        (unsigned long long)rep.connects,
        (unsigned long long)rep.reconnects,
        (unsigned long long)rep.windows_replayed,
        (unsigned long long)rep.nacks_received);
    if (rep.torn_frames + rep.forced_disconnects +
            rep.duplicate_batches + rep.reordered_batches +
            rep.corrupted_frames + rep.hostile_lengths >
        0)
        std::printf("chaos: %llu torn, %llu disconnects, "
                    "%llu duplicates, %llu reorders, %llu corrupt, "
                    "%llu hostile lengths\n",
                    (unsigned long long)rep.torn_frames,
                    (unsigned long long)rep.forced_disconnects,
                    (unsigned long long)rep.duplicate_batches,
                    (unsigned long long)rep.reordered_batches,
                    (unsigned long long)rep.corrupted_frames,
                    (unsigned long long)rep.hostile_lengths);
    if (!rep.delivered_all) {
        std::fprintf(stderr, "eddie_replay: %s\n", rep.error.c_str());
        return 6;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_replay",
                                 [&] { return run(argc, argv); });
}
