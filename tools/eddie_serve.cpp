/**
 * @file
 * eddie_serve — run the supervised streaming runtime (src/serve) over
 * one or more captured workload streams, with injectable source
 * faults, bounded-queue backpressure, crash-consistent checkpointing,
 * and hot model reload.
 *
 *   eddie_serve <model-file> <workload>
 *       [--scale S] [--seed N] [--em] [--snr DB] [--threads T]
 *       [--inject loop|burst] [--payload N] [--contamination R]
 *       [--target REGION]
 *       [--shards N]
 *       [--stall-prob P] [--error-prob P] [--source-seed N]
 *       [--retries N]
 *       [--queue N] [--drop-oldest]
 *       [--checkpoint FILE] [--ckpt-interval N] [--full-every N]
 *       [--resume] [--queue-batch N] [--watch-model]
 *       [--restart-budget N] [--strict-resume]
 *
 * Shard i monitors the stream captured with seed + i. SIGINT/SIGTERM
 * request a graceful stop: workers finish their current window, write
 * a final checkpoint, and the serving counters are flushed; with
 * --resume a later invocation continues from those checkpoints with
 * bit-identical verdicts.
 *
 * Exit codes distinguish failure modes so fleet scripts can branch:
 *   0  clean run, no anomalies
 *   2  usage / bad arguments
 *   3  anomalies reported
 *   4  a shard exhausted its restart budget (escalated; its verdicts
 *      are the state at its last checkpoint)
 *   5  --strict-resume: a resume hit an unrecoverable checkpoint
 *      (snapshot decode failures; the run started cold instead)
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "signal_util.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 2) {
        std::fprintf(
            stderr,
            "usage: eddie_serve <model-file> <workload> [--scale S] "
            "[--seed N] [--em] [--snr DB]\n"
            "       [--threads T] [--inject loop|burst] [--payload N] "
            "[--contamination R] [--target REGION]\n"
            "       [--shards N] [--stall-prob P] [--error-prob P] "
            "[--source-seed N] [--retries N]\n"
            "       [--queue N] [--drop-oldest] [--checkpoint FILE] "
            "[--ckpt-interval N] [--full-every N] [--resume]\n"
            "       [--ckpt-arc] [--queue-batch N] [--watch-model]\n"
            "       [--restart-budget N] [--strict-resume]\n");
        return 2;
    }
    const std::string model_path = args.positional()[0];
    // Sniffs text vs EDDIEARC archive models.
    auto model = std::make_shared<const core::TrainedModel>(
        core::loadModelFile(model_path));

    core::PipelineConfig cfg;
    cfg.threads = std::size_t(args.getLong("threads", 0));
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
        cfg.core.os_irq_rate_hz = 1000.0;
    }
    auto workload = workloads::makeWorkload(
        args.positional()[1], args.getDouble("scale", 1.0));

    const auto target = args.has("target")
                            ? std::size_t(args.getLong("target", 0))
                            : inject::defaultTargetLoop(workload);
    const auto seed = std::uint64_t(args.getLong("seed", 42));

    cpu::InjectionPlan plan;
    const std::string inject = args.get("inject");
    if (inject == "loop") {
        plan = inject::loopPayload(
            target, std::size_t(args.getLong("payload", 8)),
            args.getDouble("contamination", 1.0), seed);
    } else if (inject == "burst") {
        plan = inject::burstOfSize(
            workload, target,
            std::uint64_t(args.getLong("payload", 476'000)), 1, seed);
    } else if (!inject.empty()) {
        std::fprintf(stderr, "unknown --inject kind '%s'\n",
                     inject.c_str());
        return 2;
    }

    const std::size_t shards =
        std::size_t(std::max(args.getLong("shards", 1), 1L));
    core::Pipeline pipe(std::move(workload), cfg);

    // Capture the streams up front (shard i = seed + i), then serve
    // them through the source stack: replay -> deterministic faults
    // -> retry with backoff.
    faults::SourceFaultConfig fault_cfg;
    fault_cfg.stall_prob = args.getDouble("stall-prob", 0.0);
    fault_cfg.error_prob = args.getDouble("error-prob", 0.0);
    fault_cfg.seed = std::uint64_t(args.getLong("source-seed", 0x50FA));
    fault_cfg.enabled =
        fault_cfg.stall_prob > 0.0 || fault_cfg.error_prob > 0.0;

    serve::RetryConfig retry;
    retry.max_attempts = std::size_t(args.getLong("retries", 8));
    retry.backoff.seed = fault_cfg.seed ^ 0xB0FF;

    std::vector<std::unique_ptr<serve::SampleSource>> owned;
    std::vector<serve::SampleSource *> sources;
    for (std::size_t i = 0; i < shards; ++i) {
        const auto stream = pipe.captureRunShared(seed + i, plan);
        auto base = std::make_unique<serve::VectorSource>(stream);
        serve::SampleSource *tip = base.get();
        owned.push_back(std::move(base));
        if (fault_cfg.enabled) {
            faults::SourceFaultConfig shard_faults = fault_cfg;
            shard_faults.seed += i; // independent schedules per shard
            auto flaky = std::make_unique<serve::FlakySource>(
                *tip, shard_faults);
            tip = flaky.get();
            owned.push_back(std::move(flaky));
            serve::RetryConfig shard_retry = retry;
            shard_retry.backoff.seed += i;
            auto retrying = std::make_unique<serve::RetryingSource>(
                *tip, shard_retry);
            tip = retrying.get();
            owned.push_back(std::move(retrying));
        }
        sources.push_back(tip);
    }

    serve::ServeConfig scfg;
    scfg.monitor = cfg.monitor;
    scfg.queue.capacity =
        std::size_t(std::max(args.getLong("queue", 64), 1L));
    scfg.queue.policy = args.has("drop-oldest")
                            ? serve::BackpressurePolicy::DropOldest
                            : serve::BackpressurePolicy::Block;
    scfg.checkpoint_interval =
        std::size_t(std::max(args.getLong("ckpt-interval", 64), 0L));
    scfg.checkpoint_path = args.get("checkpoint");
    scfg.resume = args.has("resume");
    scfg.full_snapshot_every =
        std::size_t(std::max(args.getLong("full-every", 16), 1L));
    // One EDDIEARC container instead of the snapshot + .dlt pair;
    // legacy checkpoints are still read when the archive is absent.
    scfg.checkpoint_archive = args.has("ckpt-arc");
    scfg.queue_batch =
        std::size_t(std::max(args.getLong("queue-batch", 16), 1L));
    scfg.watchdog.restart_budget = std::size_t(std::max(
        args.getLong("restart-budget",
                     long(scfg.watchdog.restart_budget)),
        0L));
    if (args.has("watch-model"))
        scfg.model_path = model_path;

    tools::handleStopSignals();
    serve::Supervisor sup(model, scfg);
    sup.setStopCheck([] { return tools::stopRequested(); });
    const auto results = sup.run(sources);

    std::size_t total_reports = 0;
    bool any_escalated = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        total_reports += r.reports.size();
        any_escalated = any_escalated || r.escalated;
        std::printf("shard %zu: %zu steps, %zu reports%s%s\n", i,
                    r.steps, r.reports.size(),
                    r.escalated ? " [escalated]" : "",
                    r.stopped ? " [stopped]" : "");
        for (std::size_t k = 0; k < r.reports.size() && k < 5; ++k) {
            const auto &rep = r.reports[k];
            std::printf(
                "  t=%8.3f ms while tracking %s\n", rep.time * 1e3,
                sup.model()->regions[rep.region].name.c_str());
        }
        if (r.reports.size() > 5)
            std::printf("  ... and %zu more\n", r.reports.size() - 5);
    }
    const core::ServeStats stats = sup.stats();
    std::printf("%s\n", core::describe(stats).c_str());
    // Severity-ordered: an unrecoverable checkpoint under
    // --strict-resume beats escalation beats anomaly verdicts.
    if (args.has("strict-resume") && scfg.resume &&
        stats.snapshot_decode_failures > 0) {
        std::fprintf(stderr,
                     "eddie_serve: %llu unrecoverable checkpoint "
                     "shard(s) on resume (--strict-resume)\n",
                     (unsigned long long)stats.snapshot_decode_failures);
        return 5;
    }
    if (any_escalated) {
        std::fprintf(stderr, "eddie_serve: restart budget exhausted; "
                             "escalated shard(s) hold last-checkpoint "
                             "verdicts\n");
        return 4;
    }
    return total_reports == 0 ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_serve",
                                 [&] { return run(argc, argv); });
}
