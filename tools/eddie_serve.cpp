/**
 * @file
 * eddie_serve — run the supervised streaming runtime (src/serve) over
 * one or more captured workload streams, with injectable source
 * faults, bounded-queue backpressure, crash-consistent checkpointing,
 * and hot model reload.
 *
 *   eddie_serve <model-file> <workload>
 *       [--scale S] [--seed N] [--em] [--snr DB] [--threads T]
 *       [--inject loop|burst] [--payload N] [--contamination R]
 *       [--target REGION]
 *       [--shards N]
 *       [--stall-prob P] [--error-prob P] [--source-seed N]
 *       [--retries N]
 *       [--queue N] [--drop-oldest]
 *       [--checkpoint FILE] [--ckpt-interval N] [--full-every N]
 *       [--resume] [--queue-batch N] [--watch-model]
 *       [--restart-budget N] [--strict-resume]
 *
 * Wire-ingestion mode replaces the workload with a socket front end
 * (the EDDIEWIRE protocol, DESIGN.md §11) fed by eddie_replay:
 *
 *   eddie_serve <model-file> --listen HOST:PORT | --listen-pipe PATH
 *       [--expect N] [--tenant ID] [--idle-timeout-ms MS]
 *       [--checkpoint FILE] [--ckpt-interval N] [--full-every N]
 *       [--resume] [--ckpt-arc] [--queue-batch N]
 *       [--restart-budget N]
 *
 * Shard i monitors the stream captured with seed + i. SIGINT/SIGTERM
 * request a graceful stop: workers finish their current window, write
 * a final checkpoint, and the serving counters are flushed; with
 * --resume a later invocation continues from those checkpoints with
 * bit-identical verdicts.
 *
 * Exit codes distinguish failure modes so fleet scripts can branch:
 *   0  clean run, no anomalies
 *   2  usage / bad arguments
 *   3  anomalies reported
 *   4  a shard exhausted its restart budget (escalated; its verdicts
 *      are the state at its last checkpoint)
 *   5  --strict-resume: a resume hit an unrecoverable checkpoint
 *      (snapshot decode failures; the run started cold instead)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "serve/sample_source.h"
#include "serve/supervisor.h"
#include "serve/wire_listener.h"
#include "signal_util.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

/**
 * Wire-ingestion mode (--listen / --listen-pipe): no workload is
 * captured locally — admitted eddie_replay clients stream STS windows
 * over the EDDIEWIRE protocol into per-session WireSources, and the
 * fleet supervisor monitors those. SIGINT/SIGTERM drains and closes
 * the listener FIRST (unblocking any feeder parked on a silent wire)
 * so the final checkpoint still gets written.
 */
int
runListen(const tools::Args &args)
{
    auto model = std::make_shared<const core::TrainedModel>(
        core::loadModelFile(args.positional()[0]));

    serve::TenantRegistry reg;
    std::string tenant = args.get("tenant");
    if (tenant.empty())
        tenant.assign("default");
    serve::TenantSpec spec;
    spec.id = tenant;
    spec.model = model;
    reg.addTenant(std::move(spec));

    serve::WireListenerConfig lcfg;
    lcfg.tcp = args.get("listen");
    lcfg.unix_path = args.get("listen-pipe");
    lcfg.idle_timeout_ms =
        args.getDouble("idle-timeout-ms", lcfg.idle_timeout_ms);

    tools::ignoreSigpipe();
    tools::handleStopSignals();

    serve::WireListener listener(reg, lcfg);
    listener.start();
    if (!listener.tcpAddress().empty())
        std::printf("listening on tcp %s\n",
                    listener.tcpAddress().c_str());
    if (!listener.pipeAddress().empty())
        std::printf("listening on pipe %s\n",
                    listener.pipeAddress().c_str());
    std::fflush(stdout);

    // Admission window: wait for --expect sessions (poll slices so a
    // stop signal cuts the wait short), then freeze and run.
    const std::size_t expect =
        std::size_t(std::max(args.getLong("expect", 1), 1L));
    std::size_t admitted = 0;
    while (!tools::stopRequested()) {
        admitted = listener.awaitSessions(expect, 200.0);
        if (admitted >= expect)
            break;
    }
    if (admitted < expect) {
        listener.drainAndClose();
        std::printf("stopped before %zu sessions connected\n", expect);
        return 0;
    }
    listener.freezeAdmission();

    serve::ServeConfig scfg;
    scfg.checkpoint_interval =
        std::size_t(std::max(args.getLong("ckpt-interval", 64), 0L));
    scfg.checkpoint_path = args.get("checkpoint");
    scfg.resume = args.has("resume");
    scfg.full_snapshot_every =
        std::size_t(std::max(args.getLong("full-every", 16), 1L));
    scfg.checkpoint_archive = args.has("ckpt-arc");
    scfg.queue_batch =
        std::size_t(std::max(args.getLong("queue-batch", 16), 1L));
    scfg.watchdog.restart_budget = std::size_t(std::max(
        args.getLong("restart-budget",
                     long(scfg.watchdog.restart_budget)),
        0L));
    // Wire sources block in next(); the thread-pair runtime is the
    // one that tolerates a blocking source per feeder.
    scfg.scheduler.workers = 0;

    serve::Supervisor sup(scfg);
    sup.setStopCheck([] { return tools::stopRequested(); });

    // Drain watcher: on a stop signal, close the wire before the
    // supervisor writes its final checkpoint so feeders unblock.
    std::atomic<bool> done{false};
    std::thread drainer([&] {
        while (!done.load() && !tools::stopRequested())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        if (!done.load())
            listener.drainAndClose();
    });

    const serve::FleetResult fr = sup.runFleet(reg);
    done.store(true);
    listener.drainAndClose();
    drainer.join();

    std::size_t total_reports = 0;
    bool any_escalated = false;
    const std::vector<serve::WireSource *> srcs = listener.sources();
    for (std::size_t i = 0; i < fr.sessions.size(); ++i) {
        const auto &r = fr.sessions[i];
        total_reports += r.reports.size();
        any_escalated = any_escalated || r.escalated;
        const serve::WireSourceStats ws =
            i < srcs.size() ? srcs[i]->wireStats()
                            : serve::WireSourceStats{};
        std::printf("session %zu: %zu steps, %zu reports, "
                    "%llu ingested, %llu duplicates dropped%s%s\n",
                    i, r.steps, r.reports.size(),
                    (unsigned long long)ws.ingested,
                    (unsigned long long)ws.duplicates_dropped,
                    r.escalated ? " [escalated]" : "",
                    r.stopped ? " [stopped]" : "");
    }
    const serve::WireListenerStats ls = listener.stats();
    std::printf("wire: %llu accepted, %llu reattaches, %llu acks, "
                "%llu nacks, %llu malformed rejected, %llu conn "
                "errors, %llu idle closes, %llu bytes\n",
                (unsigned long long)ls.connections_accepted,
                (unsigned long long)ls.reattaches,
                (unsigned long long)ls.acks_sent,
                (unsigned long long)ls.nacks_sent,
                (unsigned long long)ls.wire.totalErrors(),
                (unsigned long long)ls.conn_errors,
                (unsigned long long)ls.idle_closes,
                (unsigned long long)ls.bytes_received);
    std::printf("%s\n", core::describe(sup.stats()).c_str());
    if (any_escalated) {
        std::fprintf(stderr,
                     "eddie_serve: escalated wire session(s)\n");
        return 4;
    }
    return total_reports == 0 ? 0 : 3;
}

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.has("listen") || args.has("listen-pipe")) {
        if (args.positional().size() != 1) {
            std::fprintf(stderr,
                         "usage: eddie_serve <model-file> "
                         "--listen HOST:PORT | --listen-pipe PATH\n"
                         "       [--expect N] [--tenant ID] "
                         "[--idle-timeout-ms MS] [--checkpoint FILE]\n"
                         "       [--ckpt-interval N] [--full-every N] "
                         "[--resume] [--ckpt-arc]\n"
                         "       [--queue-batch N] "
                         "[--restart-budget N]\n");
            return 2;
        }
        return runListen(args);
    }
    if (args.positional().size() != 2) {
        std::fprintf(
            stderr,
            "usage: eddie_serve <model-file> <workload> [--scale S] "
            "[--seed N] [--em] [--snr DB]\n"
            "       [--threads T] [--inject loop|burst] [--payload N] "
            "[--contamination R] [--target REGION]\n"
            "       [--shards N] [--stall-prob P] [--error-prob P] "
            "[--source-seed N] [--retries N]\n"
            "       [--queue N] [--drop-oldest] [--checkpoint FILE] "
            "[--ckpt-interval N] [--full-every N] [--resume]\n"
            "       [--ckpt-arc] [--queue-batch N] [--watch-model]\n"
            "       [--restart-budget N] [--strict-resume]\n");
        return 2;
    }
    const std::string model_path = args.positional()[0];
    // Sniffs text vs EDDIEARC archive models.
    auto model = std::make_shared<const core::TrainedModel>(
        core::loadModelFile(model_path));

    core::PipelineConfig cfg;
    cfg.threads = std::size_t(args.getLong("threads", 0));
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
        cfg.core.os_irq_rate_hz = 1000.0;
    }
    auto workload = workloads::makeWorkload(
        args.positional()[1], args.getDouble("scale", 1.0));

    const auto target = args.has("target")
                            ? std::size_t(args.getLong("target", 0))
                            : inject::defaultTargetLoop(workload);
    const auto seed = std::uint64_t(args.getLong("seed", 42));

    cpu::InjectionPlan plan;
    const std::string inject = args.get("inject");
    if (inject == "loop") {
        plan = inject::loopPayload(
            target, std::size_t(args.getLong("payload", 8)),
            args.getDouble("contamination", 1.0), seed);
    } else if (inject == "burst") {
        plan = inject::burstOfSize(
            workload, target,
            std::uint64_t(args.getLong("payload", 476'000)), 1, seed);
    } else if (!inject.empty()) {
        std::fprintf(stderr, "unknown --inject kind '%s'\n",
                     inject.c_str());
        return 2;
    }

    const std::size_t shards =
        std::size_t(std::max(args.getLong("shards", 1), 1L));
    core::Pipeline pipe(std::move(workload), cfg);

    // Capture the streams up front (shard i = seed + i), then serve
    // them through the source stack: replay -> deterministic faults
    // -> retry with backoff.
    faults::SourceFaultConfig fault_cfg;
    fault_cfg.stall_prob = args.getDouble("stall-prob", 0.0);
    fault_cfg.error_prob = args.getDouble("error-prob", 0.0);
    fault_cfg.seed = std::uint64_t(args.getLong("source-seed", 0x50FA));
    fault_cfg.enabled =
        fault_cfg.stall_prob > 0.0 || fault_cfg.error_prob > 0.0;

    serve::RetryConfig retry;
    retry.max_attempts = std::size_t(args.getLong("retries", 8));
    retry.backoff.seed = fault_cfg.seed ^ 0xB0FF;

    std::vector<std::unique_ptr<serve::SampleSource>> owned;
    std::vector<serve::SampleSource *> sources;
    for (std::size_t i = 0; i < shards; ++i) {
        const auto stream = pipe.captureRunShared(seed + i, plan);
        auto base = std::make_unique<serve::VectorSource>(stream);
        serve::SampleSource *tip = base.get();
        owned.push_back(std::move(base));
        if (fault_cfg.enabled) {
            faults::SourceFaultConfig shard_faults = fault_cfg;
            shard_faults.seed += i; // independent schedules per shard
            auto flaky = std::make_unique<serve::FlakySource>(
                *tip, shard_faults);
            tip = flaky.get();
            owned.push_back(std::move(flaky));
            serve::RetryConfig shard_retry = retry;
            shard_retry.backoff.seed += i;
            auto retrying = std::make_unique<serve::RetryingSource>(
                *tip, shard_retry);
            tip = retrying.get();
            owned.push_back(std::move(retrying));
        }
        sources.push_back(tip);
    }

    serve::ServeConfig scfg;
    scfg.monitor = cfg.monitor;
    scfg.queue.capacity =
        std::size_t(std::max(args.getLong("queue", 64), 1L));
    scfg.queue.policy = args.has("drop-oldest")
                            ? serve::BackpressurePolicy::DropOldest
                            : serve::BackpressurePolicy::Block;
    scfg.checkpoint_interval =
        std::size_t(std::max(args.getLong("ckpt-interval", 64), 0L));
    scfg.checkpoint_path = args.get("checkpoint");
    scfg.resume = args.has("resume");
    scfg.full_snapshot_every =
        std::size_t(std::max(args.getLong("full-every", 16), 1L));
    // One EDDIEARC container instead of the snapshot + .dlt pair;
    // legacy checkpoints are still read when the archive is absent.
    scfg.checkpoint_archive = args.has("ckpt-arc");
    scfg.queue_batch =
        std::size_t(std::max(args.getLong("queue-batch", 16), 1L));
    scfg.watchdog.restart_budget = std::size_t(std::max(
        args.getLong("restart-budget",
                     long(scfg.watchdog.restart_budget)),
        0L));
    if (args.has("watch-model"))
        scfg.model_path = model_path;

    tools::handleStopSignals();
    serve::Supervisor sup(model, scfg);
    sup.setStopCheck([] { return tools::stopRequested(); });
    const auto results = sup.run(sources);

    std::size_t total_reports = 0;
    bool any_escalated = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        total_reports += r.reports.size();
        any_escalated = any_escalated || r.escalated;
        std::printf("shard %zu: %zu steps, %zu reports%s%s\n", i,
                    r.steps, r.reports.size(),
                    r.escalated ? " [escalated]" : "",
                    r.stopped ? " [stopped]" : "");
        for (std::size_t k = 0; k < r.reports.size() && k < 5; ++k) {
            const auto &rep = r.reports[k];
            std::printf(
                "  t=%8.3f ms while tracking %s\n", rep.time * 1e3,
                sup.model()->regions[rep.region].name.c_str());
        }
        if (r.reports.size() > 5)
            std::printf("  ... and %zu more\n", r.reports.size() - 5);
    }
    const core::ServeStats stats = sup.stats();
    std::printf("%s\n", core::describe(stats).c_str());
    // Severity-ordered: an unrecoverable checkpoint under
    // --strict-resume beats escalation beats anomaly verdicts.
    if (args.has("strict-resume") && scfg.resume &&
        stats.snapshot_decode_failures > 0) {
        std::fprintf(stderr,
                     "eddie_serve: %llu unrecoverable checkpoint "
                     "shard(s) on resume (--strict-resume)\n",
                     (unsigned long long)stats.snapshot_decode_failures);
        return 5;
    }
    if (any_escalated) {
        std::fprintf(stderr, "eddie_serve: restart budget exhausted; "
                             "escalated shard(s) hold last-checkpoint "
                             "verdicts\n");
        return 4;
    }
    return total_reports == 0 ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_serve",
                                 [&] { return run(argc, argv); });
}
