/**
 * @file
 * Tiny flag parser and top-level exception handler shared by the
 * command-line tools.
 */

#ifndef EDDIE_TOOLS_TOOL_UTIL_H
#define EDDIE_TOOLS_TOOL_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

namespace eddie::tools
{

/**
 * Runs a tool's body, turning any escaped exception — a corrupt model
 * file, an unknown workload, a failed write — into a one-line stderr
 * message and exit code 1 instead of std::terminate. Bodies return
 * their own exit codes (0 ok, 2 usage, 3 anomalies reported).
 */
template <typename Body>
int
runTool(const char *tool, Body &&body)
{
    try {
        return body();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    } catch (...) {
        std::fprintf(stderr, "%s: error: unknown exception\n", tool);
    }
    return 1;
}

/** Positional arguments plus --key value / --flag options. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                if (i + 1 < argc && argv[i + 1][0] != '-') {
                    options_.emplace_back(key, argv[++i]);
                } else {
                    options_.emplace_back(key, "");
                }
            } else {
                positional_.push_back(a);
            }
        }
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : options_)
            if (k == key)
                return true;
        return false;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        for (const auto &[k, v] : options_)
            if (k == key)
                return v;
        return fallback;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto v = get(key);
        return v.empty() ? fallback : std::atof(v.c_str());
    }

    long
    getLong(const std::string &key, long fallback) const
    {
        const auto v = get(key);
        return v.empty() ? fallback : std::atol(v.c_str());
    }

  private:
    std::vector<std::string> positional_;
    std::vector<std::pair<std::string, std::string>> options_;
};

} // namespace eddie::tools

#endif // EDDIE_TOOLS_TOOL_UTIL_H
