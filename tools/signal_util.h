/**
 * @file
 * Graceful-shutdown signals for the long-running tools. The first
 * SIGINT/SIGTERM raises a flag the tool's main loop polls — it
 * finishes the current window, flushes metrics, and writes a final
 * checkpoint before exiting; a second signal while that unwinds
 * hard-exits (the operator's escape hatch from a stuck flush).
 */

#ifndef EDDIE_TOOLS_SIGNAL_UTIL_H
#define EDDIE_TOOLS_SIGNAL_UTIL_H

#include <csignal>
#include <cstdlib>

namespace eddie::tools
{

namespace detail
{

inline volatile std::sig_atomic_t g_stop = 0;

inline void
onStopSignal(int sig)
{
    if (g_stop != 0)
        std::_Exit(128 + sig);
    g_stop = 1;
    // Re-arm: some platforms reset the disposition on delivery, and
    // the second-signal hard exit needs the handler in place.
    std::signal(sig, onStopSignal);
}

} // namespace detail

/** Installs the SIGINT/SIGTERM graceful-stop handlers. */
inline void
handleStopSignals()
{
    std::signal(SIGINT, detail::onStopSignal);
    std::signal(SIGTERM, detail::onStopSignal);
}

/** True once a stop signal arrived; poll from the main loop. */
inline bool
stopRequested()
{
    return detail::g_stop != 0;
}

/**
 * Ignores SIGPIPE process-wide. The wire tools write to sockets and
 * pipes whose peer can vanish mid-write; with the default disposition
 * that kills the process, with SIG_IGN the write fails with EPIPE and
 * the connection layer counts it as an ordinary connection error
 * (WireListenerStats::conn_errors). Call before any socket/pipe I/O.
 */
inline void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

} // namespace eddie::tools

#endif // EDDIE_TOOLS_SIGNAL_UTIL_H
