/**
 * @file
 * eddie_train — characterize a workload's normal execution and save
 * the trained model.
 *
 *   eddie_train <workload> <model-file>
 *       [--scale S] [--runs N] [--em] [--snr DB] [--alpha A]
 *       [--threads T]
 *
 * The model file is a plain-text artifact consumed by eddie_monitor
 * and eddie_inspect.
 */

#include <cstdio>
#include <fstream>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: eddie_train <workload> <model-file> "
                     "[--scale S] [--runs N] [--em] [--snr DB] "
                     "[--alpha A] [--threads T]\n"
                     "  --threads 0 (default) uses all hardware "
                     "threads; any value yields the same model\n"
                     "  workloads:");
        for (const auto &n : workloads::workloadNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }
    const auto &name = args.positional()[0];
    const auto &out_path = args.positional()[1];

    core::PipelineConfig cfg;
    cfg.train_runs = std::size_t(args.getLong("runs", 8));
    cfg.trainer.alpha = args.getDouble("alpha", 0.01);
    cfg.threads = std::size_t(args.getLong("threads", 0));
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
        cfg.core.os_irq_rate_hz = 1000.0;
    }

    core::Pipeline pipe(
        workloads::makeWorkload(name, args.getDouble("scale", 1.0)),
        cfg);
    std::printf("training '%s' on %zu runs (%s path, %zu threads)...\n",
                name.c_str(), cfg.train_runs,
                args.has("em") ? "EM" : "power",
                common::ThreadPool::resolveThreads(cfg.threads));
    core::TrainingDiagnostics diag;
    const auto model = pipe.trainModel(&diag);

    std::size_t trained = 0;
    for (const auto &r : model.regions)
        trained += r.trained;
    std::printf("trained %zu of %zu regions\n", trained,
                model.regions.size());

    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    core::saveModel(model, os);
    std::printf("model written to %s\n", out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_train",
                                 [&] { return run(argc, argv); });
}
