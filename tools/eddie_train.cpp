/**
 * @file
 * eddie_train — characterize a workload's normal execution and save
 * the trained model.
 *
 *   eddie_train <workload> <model-file>
 *       [--scale S] [--runs N] [--em] [--snr DB] [--alpha A]
 *       [--threads T] [--arc]
 *
 * By default the model file is the legacy plain-text artifact; with
 * --arc it is written as an EDDIEARC archive (binary model segment,
 * mmap + CRC-verified load). Either flavor is consumed by
 * eddie_monitor, eddie_inspect, eddie_analyze, and eddie_serve —
 * they all load through the format-sniffing core::loadModelFile().
 */

#include <cstdio>
#include <fstream>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: eddie_train <workload> <model-file> "
                     "[--scale S] [--runs N] [--em] [--snr DB] "
                     "[--alpha A] [--threads T] [--arc]\n"
                     "  --threads 0 (default) uses all hardware "
                     "threads; any value yields the same model\n"
                     "  --arc writes an EDDIEARC archive instead of "
                     "the legacy text format\n"
                     "  workloads:");
        for (const auto &n : workloads::workloadNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }
    const auto &name = args.positional()[0];
    const auto &out_path = args.positional()[1];

    core::PipelineConfig cfg;
    cfg.train_runs = std::size_t(args.getLong("runs", 8));
    cfg.trainer.alpha = args.getDouble("alpha", 0.01);
    cfg.threads = std::size_t(args.getLong("threads", 0));
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
        cfg.core.os_irq_rate_hz = 1000.0;
    }

    core::Pipeline pipe(
        workloads::makeWorkload(name, args.getDouble("scale", 1.0)),
        cfg);
    std::printf("training '%s' on %zu runs (%s path, %zu threads)...\n",
                name.c_str(), cfg.train_runs,
                args.has("em") ? "EM" : "power",
                common::ThreadPool::resolveThreads(cfg.threads));
    core::TrainingDiagnostics diag;
    const auto model = pipe.trainModel(&diag);

    std::size_t trained = 0;
    for (const auto &r : model.regions)
        trained += r.trained;
    std::printf("trained %zu of %zu regions\n", trained,
                model.regions.size());

    const auto format = args.has("arc") ? core::ModelFormat::Archive
                                        : core::ModelFormat::Text;
    core::saveModelFile(model, out_path, format);
    std::printf("model written to %s (%s)\n", out_path.c_str(),
                args.has("arc") ? "archive" : "text");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_train",
                                 [&] { return run(argc, argv); });
}
