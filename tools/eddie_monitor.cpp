/**
 * @file
 * eddie_monitor — monitor one run of a workload against a trained
 * model and print a report.
 *
 *   eddie_monitor <model-file> <workload>
 *       [--scale S] [--seed N] [--em] [--snr DB] [--threads T]
 *       [--inject loop|burst] [--payload N] [--contamination R]
 *       [--target REGION] [--checkpoint FILE]
 *
 * The scale/path options must match how the model was trained.
 *
 * SIGINT/SIGTERM stop the monitoring loop gracefully: the current
 * window finishes, metrics over the processed prefix are flushed, and
 * with --checkpoint a final resumable snapshot is written (a second
 * signal hard-exits).
 */

#include <cstdio>
#include <fstream>

#include "core/pipeline.h"
#include "inject/scenarios.h"
#include "serve/checkpoint.h"
#include "signal_util.h"
#include "tool_util.h"

using namespace eddie;

namespace
{

int
run(int argc, char **argv)
{
    tools::Args args(argc, argv);
    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: eddie_monitor <model-file> <workload> "
                     "[--scale S] [--seed N] [--em] [--snr DB]\n"
                     "       [--threads T] [--inject loop|burst] "
                     "[--payload N] "
                     "[--contamination R] [--target REGION]\n");
        return 2;
    }
    // Sniffs text vs EDDIEARC archive models.
    const auto model = core::loadModelFile(args.positional()[0]);

    core::PipelineConfig cfg;
    cfg.threads = std::size_t(args.getLong("threads", 0));
    if (args.has("em")) {
        cfg.path = core::SignalPath::EmBaseband;
        cfg.channel.snr_db = args.getDouble("snr", 30.0);
        cfg.core.os_irq_rate_hz = 1000.0;
    }
    auto workload = workloads::makeWorkload(
        args.positional()[1], args.getDouble("scale", 1.0));

    const auto target = args.has("target") ?
        std::size_t(args.getLong("target", 0)) :
        inject::defaultTargetLoop(workload);
    const auto seed = std::uint64_t(args.getLong("seed", 42));

    cpu::InjectionPlan plan;
    const std::string inject = args.get("inject");
    if (inject == "loop") {
        plan = inject::loopPayload(
            target, std::size_t(args.getLong("payload", 8)),
            args.getDouble("contamination", 1.0), seed);
    } else if (inject == "burst") {
        plan = inject::burstOfSize(
            workload, target,
            std::uint64_t(args.getLong("payload", 476'000)), 1, seed);
    } else if (!inject.empty()) {
        std::fprintf(stderr, "unknown --inject kind '%s'\n",
                     inject.c_str());
        return 2;
    }

    tools::handleStopSignals();
    core::Pipeline pipe(std::move(workload), cfg);

    // Explicit step loop (instead of Pipeline::monitorRun) so a stop
    // signal can interrupt between windows; metrics are then scored
    // over the processed prefix (scoreRun tolerates partial records).
    const auto stream = pipe.captureRunShared(seed, plan);
    core::Monitor monitor(model, cfg.monitor);
    bool interrupted = false;
    for (const auto &sts : *stream) {
        if (tools::stopRequested()) {
            interrupted = true;
            break;
        }
        monitor.step(sts);
    }

    core::RunEvaluation ev;
    ev.reports = monitor.reports();
    ev.records = monitor.records();
    ev.metrics = core::scoreRun(*stream, ev.records, ev.reports, model);
    ev.degraded = monitor.degradedStats();

    const std::string ckpt_path = args.get("checkpoint");
    if (!ckpt_path.empty()) {
        serve::CheckpointData ckpt;
        ckpt.monitor = monitor.exportState();
        ckpt.source_pos = ckpt.monitor.step_index;
        serve::saveCheckpointFile(ckpt, ckpt_path);
        std::printf("checkpoint written to %s (%zu steps)\n",
                    ckpt_path.c_str(), ckpt.monitor.step_index);
    }
    if (interrupted)
        std::printf("interrupted after %zu of %zu STS windows\n",
                    ev.records.size(), stream->size());

    std::printf("monitored %zu STS windows\n", ev.metrics.groups);
    std::printf("anomaly reports: %zu\n", ev.reports.size());
    for (std::size_t i = 0;
         i < ev.reports.size() && i < 10; ++i) {
        const auto &r = ev.reports[i];
        std::printf("  t=%8.3f ms while tracking %s\n",
                    r.time * 1e3,
                    model.regions[r.region].name.c_str());
    }
    if (ev.reports.size() > 10)
        std::printf("  ... and %zu more\n", ev.reports.size() - 10);
    if (!inject.empty()) {
        std::printf("injected groups: %zu, detected: %zu\n",
                    ev.metrics.injected_groups,
                    ev.metrics.true_positives);
        if (ev.metrics.detection_latency >= 0.0) {
            std::printf("detection latency: %.2f ms\n",
                        ev.metrics.detection_latency * 1e3);
        }
    } else {
        std::printf("false positives: %zu (%.2f%%)\n",
                    ev.metrics.false_positives,
                    100.0 * double(ev.metrics.false_positives) /
                        double(std::max<std::size_t>(
                            ev.metrics.groups, 1)));
        std::printf("coverage: %.1f%%\n",
                    100.0 * double(ev.metrics.covered_steps) /
                        double(std::max<std::size_t>(
                            ev.metrics.labeled_steps, 1)));
    }
    return ev.reports.empty() ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    return eddie::tools::runTool("eddie_monitor",
                                 [&] { return run(argc, argv); });
}
